"""k-ary n-dimensional meshes and tori with wormhole routing.

Matches the paper's simulator (Section 3): "two- and three-dimensional
meshes and tori utilizing wormhole routing with virtual channels.  The size
in each dimension, the number of virtual channels, and buffer sizes are all
run-time parameters.  Links were one byte wide."

* Meshes need a single VC per logical network and deliver packets in order
  when configured that way; with ``vcs_per_net > 1`` the VC choice is
  adaptive and packets may arrive out of order ([Dal90], quoted in
  Section 1.1).
* Tori use the dateline discipline: two VC classes per logical network; a
  packet switches from class 0 to class 1 on the wrap-around hop of each
  dimension, which breaks the channel-dependency cycle of the ring.
* ``adaptive=True`` (meshes only) implements the Section 6.3 future-work
  item -- "extend the simulator to study how NIFDY interacts with adaptive
  routing on a mesh" -- as a Duato-style fully-adaptive router: each
  logical network gets adaptive VC class(es) usable toward any profitable
  dimension plus one escape VC restricted to dimension-order routing, so
  the escape sub-network keeps the whole thing deadlock-free.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..links import Link
from ..packets import Packet
from ..routers import Router
from ..sim import Simulator
from .base import Network, vc_layout

#: Per-VC flit buffer depth ("each flit buffer holds at most two flits").
DEFAULT_BUFFER_FLITS = 2

#: Ejection buffers hold two 8-word packets at the NIC boundary.
DEFAULT_EJECT_FLITS = 16


def _strides(dims: Sequence[int]) -> List[int]:
    strides = [1]
    for size in dims[:-1]:
        strides.append(strides[-1] * size)
    return strides


def _coords(node: int, dims: Sequence[int]) -> Tuple[int, ...]:
    coords = []
    for size in dims:
        coords.append(node % size)
        node //= size
    return tuple(coords)


def build_mesh(
    sim: Simulator,
    dims: Sequence[int],
    torus: bool = False,
    adaptive: bool = False,
    width_bytes: int = 1,
    vcs_per_net: int = 1,
    buffer_flits: int = DEFAULT_BUFFER_FLITS,
    eject_flits: int = DEFAULT_EJECT_FLITS,
    route_delay: int = 0,
    rng: Optional[random.Random] = None,
    drop_prob: float = 0.0,
    drop_rng=None,
) -> Network:
    """Build an n-dimensional mesh or torus.

    Port layout per router: for dimension ``i``, port ``2i`` faces the
    positive direction and ``2i+1`` the negative; port ``2*ndims`` is the
    node's injection/ejection attachment.

    With ``adaptive=True`` (mesh only), ``vcs_per_net`` adaptive VCs are
    added on top of a dimension-order escape VC per logical network.
    """
    dims = tuple(dims)
    if any(size < 2 for size in dims):
        raise ValueError("every mesh dimension needs at least 2 nodes")
    if torus and adaptive:
        raise ValueError("adaptive routing is implemented for meshes only")
    if torus and vcs_per_net < 2:
        vcs_per_net = 2  # dateline discipline needs two VC classes
    if adaptive:
        # classes 0..vcs_per_net-1 are adaptive, the last is the escape VC
        vcs_per_net = vcs_per_net + 1
    rng = rng or random.Random(0)
    num_nodes = 1
    for size in dims:
        num_nodes *= size
    ndims = len(dims)
    layout = vc_layout(vcs_per_net)
    vc_count = len(layout)
    kind = "torus" if torus else ("adaptive mesh" if adaptive else "mesh")
    shape = "x".join(str(size) for size in dims)
    in_order = vcs_per_net == 1 and not torus and not adaptive
    net = Network(sim, f"{shape} {kind}", num_nodes, delivers_in_order=in_order)
    strides = _strides(dims)

    def vc_class(link: Link, vc: int) -> int:
        """Position of ``vc`` within its logical network's VC group."""
        group = link.vcs_for_net(link.net_of_vc[vc])
        return group.index(vc)

    def route(router: Router, packet: Packet, in_port: int, in_vc: int):
        cur = _coords(router.rid, dims)
        dst = _coords(packet.dst, dims)
        if cur == dst:
            eject = router.out_links[2 * ndims]
            return [(eject, eject.vcs_for_net(packet.logical_net))]
        if adaptive:
            return _route_adaptive(router, packet, cur, dst)
        for dim in range(ndims):
            c, d = cur[dim], dst[dim]
            if c == d:
                continue
            size = dims[dim]
            if torus:
                delta = (d - c) % size
                positive = delta <= size // 2
            else:
                positive = d > c
            out_port = 2 * dim if positive else 2 * dim + 1
            link = router.out_links[out_port]
            group = link.vcs_for_net(packet.logical_net)
            if not torus:
                # Any VC of the logical net (adaptive choice when > 1).
                return [(link, group)]
            wraps = (positive and c == size - 1) or (not positive and c == 0)
            same_dim = in_port in (2 * dim, 2 * dim + 1)
            if wraps:
                cls = 1
            elif same_dim:
                in_link = router._input_units[in_port][in_vc].in_link
                cls = vc_class(in_link, in_vc)
            else:
                cls = 0
            return [(link, [group[cls]])]
        raise AssertionError("unreachable: coordinates neither equal nor routed")

    def _route_adaptive(router: Router, packet: Packet, cur, dst):
        """Duato-style fully adaptive routing: any profitable direction on
        the adaptive VCs, plus a dimension-order escape VC.  Choices are
        tried in (shuffled-adaptive, escape) order; a blocked packet waits
        on whichever frees first, and the escape sub-network's acyclic
        dimension-order dependencies guarantee eventual progress."""
        profitable = []
        for dim in range(ndims):
            c, d = cur[dim], dst[dim]
            if c == d:
                continue
            out_port = 2 * dim if d > c else 2 * dim + 1
            profitable.append(router.out_links[out_port])
        choices = []
        for link in profitable:
            group = link.vcs_for_net(packet.logical_net)
            choices.append((link, group[:-1]))  # adaptive classes
        rng.shuffle(choices)
        escape = profitable[0] if len(profitable) == 1 else None
        if escape is None:
            # dimension order: lowest unfinished dimension
            for dim in range(ndims):
                if cur[dim] != dst[dim]:
                    port = 2 * dim if dst[dim] > cur[dim] else 2 * dim + 1
                    escape = router.out_links[port]
                    break
        group = escape.vcs_for_net(packet.logical_net)
        choices.append((escape, [group[-1]]))
        return choices

    routers = []
    for rid in range(num_nodes):
        router = Router(sim, rid, route, route_delay=route_delay)
        net.add_router(router)
        routers.append(router)

    def make_link(name: str, dst_router: Router, dst_port: int, buf: int) -> Link:
        return Link(
            sim,
            name,
            width_bytes,
            vc_count,
            buf,
            sink=dst_router,
            sink_port=dst_port,
            net_of_vc=layout,
            drop_prob=drop_prob,
            drop_rng=drop_rng,
        )

    # Inter-router links.
    for rid in range(num_nodes):
        cur = _coords(rid, dims)
        for dim in range(ndims):
            size = dims[dim]
            for positive in (True, False):
                coord = cur[dim]
                if not torus:
                    if positive and coord == size - 1:
                        continue
                    if not positive and coord == 0:
                        continue
                delta = 1 if positive else -1
                neighbor = rid + strides[dim] * (
                    ((coord + delta) % size) - coord
                )
                out_port = 2 * dim if positive else 2 * dim + 1
                in_port = 2 * dim + 1 if positive else 2 * dim
                link = make_link(
                    f"{kind}:{rid}->{neighbor}", routers[neighbor], in_port,
                    buffer_flits,
                )
                routers[neighbor].attach_in_link(in_port, link)
                routers[rid].attach_out_link(out_port, link)
                net.register_link(link, f"r{rid}", f"r{neighbor}")

    # NIC attachment links (created now so the graph is complete; the
    # ejection sink is bound when the NIC attaches).
    nic_port = 2 * ndims
    for rid in range(num_nodes):
        router = routers[rid]
        inj = make_link(f"{kind}:inj{rid}", router, nic_port, buffer_flits)
        router.attach_in_link(nic_port, inj)
        net.register_link(inj, f"n{rid}", f"r{rid}")
        ej = Link(
            sim,
            f"{kind}:ej{rid}",
            width_bytes,
            vc_count,
            eject_flits,
            sink=None,
            sink_port=0,
            net_of_vc=layout,
        )
        router.attach_out_link(nic_port, ej)
        net.register_link(ej, f"r{rid}", f"n{rid}")

        def attach(nic, inj=inj, ej=ej):
            nic.attach_injection(inj)
            ej.set_sink(nic, 0)
            nic.attach_ejection(ej)

        net.set_nic_wiring(rid, attach)

    return net
