"""Network container: routers + links + per-node NIC attachment points.

A topology builder produces a :class:`Network`, which owns the routers and
links and knows how to wire a NIC to each node's injection/ejection port.
All topologies carry two logical networks (request and reply, Section 3) as
disjoint VC groups on every link; they are demand-multiplexed except on the
CM-5 imitation, whose builder creates separate half-bandwidth links instead.

The container also exposes the static characteristics Table 3 reports:
network volume (buffer capacity), bisection bandwidth, and hop counts, plus
a ``networkx`` view of the topology used by the analysis module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from ..links import Link
from ..nic.base import BaseNIC
from ..packets import FLIT_BYTES
from ..routers import Router
from ..sim import Simulator

#: Default VC layout helper: ``v`` VCs for the request net then ``v`` for the
#: reply net.
def vc_layout(vcs_per_net: int, nets: int = 2) -> List[int]:
    layout: List[int] = []
    for net in range(nets):
        layout.extend([net] * vcs_per_net)
    return layout


class Network:
    """A built topology, ready for NICs to be attached."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_nodes: int,
        delivers_in_order: bool,
    ) -> None:
        self.sim = sim
        self.name = name
        self.num_nodes = num_nodes
        self.delivers_in_order = delivers_in_order
        self.routers: List[Router] = []
        self.links: List[Link] = []
        self.nics: List[Optional[BaseNIC]] = [None] * num_nodes
        # Filled in by the topology builder:
        self._nic_wiring: Dict[int, Tuple[Router, int, Callable[[BaseNIC], None]]] = {}
        self._nic_link_ids: set = set()
        self.graph = nx.DiGraph()  # routers as "r<id>", nodes as "n<id>"

    # -------------------------------------------------------------- wiring
    def add_router(self, router: Router) -> Router:
        self.routers.append(router)
        self.graph.add_node(f"r{router.rid}")
        return router

    def register_link(self, link: Link, src_label: str, dst_label: str) -> Link:
        self.links.append(link)
        if src_label.startswith("n") or dst_label.startswith("n"):
            self._nic_link_ids.add(id(link))
        self.graph.add_edge(src_label, dst_label, link=link)
        return link

    def set_nic_wiring(
        self, node: int, attach: Callable[[BaseNIC], None]
    ) -> None:
        """Record how to wire a NIC for ``node`` (builder-supplied)."""
        self._nic_wiring[node] = attach  # type: ignore[assignment]

    def attach_nics(self, factory: Callable[[int], BaseNIC]) -> List[BaseNIC]:
        """Create and wire one NIC per node using ``factory(node_id)``."""
        for node in range(self.num_nodes):
            nic = factory(node)
            self._nic_wiring[node](nic)  # type: ignore[operator]
            self.nics[node] = nic
        return list(self.nics)  # type: ignore[return-value]

    # ----------------------------------------------------- characteristics
    def volume_flits(self, include_nic_links: bool = False) -> int:
        """Total flit (= word) buffering in the fabric: the network volume
        Table 3 discusses.  The paper counts router buffers only, so NIC
        attachment links are excluded by default."""
        return sum(
            link.vc_count * link._vc_capacity
            for link in self.links
            if include_nic_links or id(link) not in self._nic_link_ids
        )

    def volume_words_per_node(self) -> float:
        return self.volume_flits() / self.num_nodes

    def bisection_bandwidth(self) -> float:
        """Max-flow bandwidth (bytes/cycle) across a balanced node bisection.

        The nodes are split into low-id and high-id halves (the natural
        split for all the regular topologies here); link capacities are
        their wire bandwidths, and the minimum cut between the halves is
        the bisection bandwidth Table 3 discusses.
        """
        flow_graph = nx.DiGraph()
        for u, v, data in self.graph.edges(data=True):
            link: Link = data["link"]
            flow_graph.add_edge(u, v, capacity=FLIT_BYTES / link.cycles_per_flit)
        half = self.num_nodes // 2
        for node in range(self.num_nodes):
            if node < half:
                flow_graph.add_edge("SRC", f"n{node}", capacity=float("inf"))
            else:
                flow_graph.add_edge(f"n{node}", "DST", capacity=float("inf"))
        value, _ = nx.maximum_flow(flow_graph, "SRC", "DST")
        return value

    def min_hops(self, src: int, dst: int) -> int:
        """Minimum link hops (including NIC links) between two nodes."""
        return nx.shortest_path_length(self.graph, f"n{src}", f"n{dst}")

    def hop_stats(self, sample: Optional[int] = None) -> Tuple[float, int]:
        """(average, maximum) hop count over all (or sampled) node pairs."""
        pairs = [
            (s, d)
            for s in range(self.num_nodes)
            for d in range(self.num_nodes)
            if s != d
        ]
        if sample is not None and len(pairs) > sample:
            step = len(pairs) // sample
            pairs = pairs[::step]
        hops = [self.min_hops(s, d) for s, d in pairs]
        return sum(hops) / len(hops), max(hops)

    def total_link_bandwidth(self) -> float:
        """Aggregate fabric bandwidth in bytes/cycle."""
        return sum(FLIT_BYTES / link.cycles_per_flit for link in self.links)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Network {self.name} nodes={self.num_nodes} "
            f"routers={len(self.routers)} links={len(self.links)}>"
        )
