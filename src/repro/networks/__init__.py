"""Network topologies: meshes, tori, fat trees, and (multi)butterflies."""

from .base import Network, vc_layout
from .butterfly import build_butterfly
from .fattree import CM5, FULL, build_fattree
from .mesh import build_mesh
from .registry import EXTENSION_NETWORK_NAMES, NETWORK_NAMES, build_network

__all__ = [
    "CM5",
    "EXTENSION_NETWORK_NAMES",
    "FULL",
    "NETWORK_NAMES",
    "Network",
    "build_butterfly",
    "build_fattree",
    "build_mesh",
    "build_network",
    "vc_layout",
]
