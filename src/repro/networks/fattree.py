"""k-ary n-tree fat trees: the full 4-ary fat tree and the CM-5 imitation.

Topology (k-ary n-tree): ``k**n`` nodes, ``n`` router levels of ``k**(n-1)``
routers each.  A level-``l`` router is identified by ``n-1`` base-k digits;
it connects downward to the level-``l-1`` routers (or nodes) that agree with
it everywhere except digit ``l-1``, and upward to the level-``l+1`` routers
that agree everywhere except digit ``l``.

Routing is the classic adaptive up / deterministic down scheme: climb to the
lowest common ancestor choosing any up port (randomised -- this is where
packets get reordered), then descend following the destination's digits.
Up*/down* routing is deadlock-free with a single VC per logical network.

Variants (Section 3):

* **full** -- every router has k parents; 1-byte links; cut-through or
  store-and-forward forwarding.
* **cm5**  -- "routers in the first two levels are connected to two parents
  rather than four, reducing bisection bandwidth ... the link bandwidth was
  reduced to 4 bits per cycle as in the CM-5 network", and the request/reply
  networks are strictly time-multiplexed every other cycle, which we model
  as two half-bandwidth sub-links per channel (each logical network gets
  8 bits every two cycles regardless of the other's traffic).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from ..links import Link
from ..packets import Packet, REPLY_NET, REQUEST_NET
from ..routers import CUTTHROUGH, STORE_AND_FORWARD, Router
from ..sim import Simulator
from .base import Network

FULL = "full"
CM5 = "cm5"


def _digits(value: int, k: int, count: int) -> Tuple[int, ...]:
    out = []
    for _ in range(count):
        out.append(value % k)
        value //= k
    return tuple(out)  # least-significant digit first


class _FatTreeMeta:
    """Shared geometry captured by the routing closure."""

    def __init__(self, k: int, levels: int, up_choices: int, sublinks: int):
        self.k = k
        self.levels = levels
        self.up_choices = up_choices
        self.sublinks = sublinks  # 1 (demand-mux) or 2 (CM-5 time-mux)
        self.router_meta: Dict[int, Tuple[int, Tuple[int, ...]]] = {}

    def port(self, logical_port: int, net: int) -> int:
        return logical_port * self.sublinks + (net if self.sublinks > 1 else 0)


def build_fattree(
    sim: Simulator,
    levels: int = 3,
    k: int = 4,
    variant: str = FULL,
    mode: str = CUTTHROUGH,
    buffer_flits: Optional[int] = None,
    eject_flits: int = 16,
    route_delay: int = 1,
    rng: Optional[random.Random] = None,
    drop_prob: float = 0.0,
    drop_rng=None,
    spray: bool = False,
    path_skew: int = 0,
    vcs_per_net: int = 1,
) -> Network:
    """Build a k-ary n-tree with ``k**levels`` nodes.

    ``spray=True`` switches the adaptive up-path from first-free-choice to
    per-packet spraying: each packet commits to ONE uniformly random up
    port and waits for it, so same-pair packets genuinely diverge onto
    different paths (and reorder) even under light load.  ``path_skew``
    adds a uniform extra routing latency in ``[0, path_skew]`` cycles per
    hop, skewing path latencies so reordering shows up in-network.
    """
    if path_skew < 0:
        raise ValueError("path_skew must be >= 0")
    if vcs_per_net < 1:
        raise ValueError("vcs_per_net must be >= 1")
    if variant not in (FULL, CM5):
        raise ValueError(f"unknown fat-tree variant {variant!r}")
    if mode == STORE_AND_FORWARD and buffer_flits is None:
        buffer_flits = 10  # a full 8-flit packet plus slack
    if buffer_flits is None:
        buffer_flits = 4
    rng = rng or random.Random(0)
    num_nodes = k ** levels
    up_choices = 2 if variant == CM5 else k
    sublinks = 2 if variant == CM5 else 1
    meta = _FatTreeMeta(k, levels, up_choices, sublinks)

    if variant == CM5:
        if vcs_per_net != 1:
            raise ValueError("the CM-5 time-mux model is single-VC per net")
        name = f"cm5 fat tree ({num_nodes})"
        width = 1  # nominal; real pacing set via cycles_per_flit below
        cycles_per_flit = 16  # 32-bit flit at 8 bits per 2 cycles, per net
    else:
        mode_name = "s&f " if mode == STORE_AND_FORWARD else ""
        spray_name = "spraying " if spray else ""
        name = f"{spray_name}{mode_name}full fat tree ({num_nodes})"
        width = 1
        cycles_per_flit = None

    net = Network(sim, name, num_nodes, delivers_in_order=False)

    # ------------------------------------------------------------- routers
    digit_count = levels - 1
    routers: Dict[Tuple[int, Tuple[int, ...]], Router] = {}
    next_rid = 0

    def exists(level: int, digits: Tuple[int, ...]) -> bool:
        """CM-5 pruning: digits below ``level`` were set by up-hops, which
        only use the first ``up_choices`` values."""
        return all(d < up_choices for d in digits[:level])

    # Route-choice caches: topology and VC layout are fixed after build, so
    # the (link, vc-candidates) entries a router can ever return are a pure
    # function of (router, direction, logical net).  Caching them keeps the
    # per-packet-per-hop work to digit comparisons plus the RNG draws --
    # which stay call-for-call identical (shuffle/randrange consume the
    # same amount of state for the same-length choice lists).
    dst_digit_cache: Dict[int, Tuple[int, ...]] = {}
    down_cache: Dict[Tuple[int, int, int], Tuple[Link, Sequence[int]]] = {}
    up_cache: Dict[Tuple[int, int], list] = {}

    def route(router: Router, packet: Packet, in_port: int, in_vc: int):
        level, digits = meta.router_meta[router.rid]
        dst = dst_digit_cache.get(packet.dst)
        if dst is None:  # dst[j] = digit j
            dst = dst_digit_cache[packet.dst] = _digits(packet.dst, k, levels)
        for j in range(level, digit_count):
            if digits[j] != dst[j + 1]:
                break
        else:  # ancestor of dst: deterministic down route
            down_digit = dst[level]  # level 0: ejection port to the node
            key = (router.rid, down_digit, packet.logical_net)
            entry = down_cache.get(key)
            if entry is None:
                port = meta.port(down_digit, packet.logical_net)
                link = router.out_links[port]
                entry = (link, link.vcs_for_net(packet.logical_net))
                down_cache[key] = entry
            return [entry]
        key = (router.rid, packet.logical_net)
        base = up_cache.get(key)
        if base is None:
            base = []
            for up in range(meta.up_choices):
                port = meta.port(k + up, packet.logical_net)
                link = router.out_links[port]
                base.append((link, link.vcs_for_net(packet.logical_net)))
            up_cache[key] = base
        if spray:
            # Packet spraying: commit to one random up port (oblivious),
            # rather than adaptively taking the first free one.
            return [base[rng.randrange(len(base))]]
        choices = base[:]  # shuffle a copy; the cache keeps builder order
        rng.shuffle(choices)
        return choices

    for level in range(levels):
        for index in range(k ** digit_count):
            digits = _digits(index, k, digit_count)
            if not exists(level, digits):
                continue
            router = Router(
                sim, next_rid, route, mode=mode, route_delay=route_delay
            )
            if path_skew:
                router.route_jitter = path_skew
                router.jitter_rng = rng
            meta.router_meta[next_rid] = (level, digits)
            routers[(level, digits)] = router
            net.add_router(router)
            next_rid += 1

    # --------------------------------------------------------------- links
    def make_links(dst_router: Router, dst_logical_port: int, label: str):
        """One link per sub-network (1 normally, 2 for CM-5 time-mux)."""
        made = []
        for sub in range(sublinks):
            nets = [sub] if sublinks > 1 else [REQUEST_NET, REPLY_NET]
            layout = []
            for n in nets:
                layout.extend([n] * vcs_per_net)
            port = dst_logical_port * sublinks + sub
            link = Link(
                sim,
                f"{label}/net{sub}" if sublinks > 1 else label,
                width,
                len(layout),
                buffer_flits,
                sink=dst_router,
                sink_port=port,
                net_of_vc=layout,
                cycles_per_flit=cycles_per_flit,
                drop_prob=drop_prob,
                drop_rng=drop_rng,
            )
            dst_router.attach_in_link(port, link)
            made.append(link)
        return made

    def wire(src: Router, src_logical_port: int, links: Sequence[Link],
             src_label: str, dst_label: str) -> None:
        for sub, link in enumerate(links):
            src.attach_out_link(src_logical_port * sublinks + sub, link)
            net.register_link(link, src_label, dst_label)

    for (level, digits), router in routers.items():
        if level + 1 >= levels:
            continue
        for value in range(up_choices):
            upper_digits = digits[:level] + (value,) + digits[level + 1:]
            upper = routers[(level + 1, upper_digits)]
            # lower->upper: upper's down port is the lower router's digit
            # at position ``level``.
            up_links = make_links(upper, digits[level], f"ft:up{router.rid}.{value}")
            wire(router, k + value, up_links, f"r{router.rid}", f"r{upper.rid}")
            down_links = make_links(router, k + value, f"ft:down{upper.rid}.{digits[level]}")
            wire(upper, digits[level], down_links, f"r{upper.rid}", f"r{router.rid}")

    # --------------------------------------------------- node attachments
    for node in range(num_nodes):
        leaf_digits = _digits(node // k, k, digit_count)
        leaf = routers[(0, leaf_digits)]
        child = node % k
        inj_links = make_links(leaf, child, f"ft:inj{node}")
        for sub, link in enumerate(inj_links):
            net.register_link(link, f"n{node}", f"r{leaf.rid}")
        ej_links = []
        for sub in range(sublinks):
            nets = [sub] if sublinks > 1 else [REQUEST_NET, REPLY_NET]
            layout = []
            for n in nets:
                layout.extend([n] * vcs_per_net)
            link = Link(
                sim,
                f"ft:ej{node}" + (f"/net{sub}" if sublinks > 1 else ""),
                width,
                len(layout),
                eject_flits,
                sink=None,
                sink_port=sub,
                net_of_vc=layout,
                cycles_per_flit=cycles_per_flit,
            )
            leaf.attach_out_link(child * sublinks + sub, link)
            net.register_link(link, f"r{leaf.rid}", f"n{node}")
            ej_links.append(link)

        def attach(nic, inj_links=inj_links, ej_links=ej_links):
            if len(inj_links) == 1:
                nic.attach_injection(inj_links[0])
                ej_links[0].set_sink(nic, 0)
                nic.attach_ejection(ej_links[0])
            else:
                nic.attach_injection_pair(inj_links)
                for sub, link in enumerate(ej_links):
                    link.set_sink(nic, sub)
                nic.attach_ejection_pair(ej_links)

        net.set_nic_wiring(node, attach)

    return net
