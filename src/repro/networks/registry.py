"""Named network configurations: the paper's simulated topologies.

``build_network(name, sim, num_nodes)`` constructs any of the eight 64-node
networks of Table 3 (and smaller/larger instances of each for scalability
runs).  Names:

================  ==========================================================
``mesh2d``        8x8 wormhole mesh, 1-byte links, single VC (in-order)
``mesh3d``        4x4x4 wormhole mesh
``torus2d``       8x8 torus, dateline VCs (can reorder packets)
``fattree``       full 4-ary fat tree, cut-through
``fattree-sf``    full 4-ary fat tree, store-and-forward
``cm5``           CM-5-style fat tree: 2 parents in lower levels, 4-bit
                  links, time-multiplexed request/reply networks
``butterfly``     radix-4 butterfly, dilation 1 (unique paths, in-order)
``multibutterfly``radix-4 multibutterfly, dilation 2 (adaptive)
================  ==========================================================
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..routers import STORE_AND_FORWARD
from ..sim import Simulator
from .base import Network
from .butterfly import build_butterfly
from .fattree import CM5, FULL, build_fattree
from .mesh import build_mesh

NETWORK_NAMES = (
    "mesh2d",
    "mesh3d",
    "torus2d",
    "fattree",
    "fattree-sf",
    "cm5",
    "butterfly",
    "multibutterfly",
)

#: Extension topologies (Section 6.3 future work), not part of the paper's
#: Table 3 set but buildable by name.  The ``-spray`` variants are the
#: modern-datacenter scenario pack's multipath fabrics: per-packet spraying
#: up-paths (plus an optional ``path_skew`` override) so packets genuinely
#: reorder in-network.
EXTENSION_NETWORK_NAMES = (
    "mesh2d-adaptive",
    "fattree-spray",
    "multibutterfly-spray",
)


def _square_dims(num_nodes: int):
    side = int(round(math.sqrt(num_nodes)))
    if side * side != num_nodes:
        raise ValueError(f"{num_nodes} nodes is not a square mesh size")
    return (side, side)


def _cube_dims(num_nodes: int):
    side = int(round(num_nodes ** (1 / 3)))
    if side ** 3 != num_nodes:
        raise ValueError(f"{num_nodes} nodes is not a cubic mesh size")
    return (side, side, side)


def _log_k(num_nodes: int, k: int) -> int:
    levels = int(round(math.log(num_nodes, k)))
    if k ** levels != num_nodes:
        raise ValueError(f"{num_nodes} is not a power of {k}")
    return levels


def build_network(
    name: str,
    sim: Simulator,
    num_nodes: int = 64,
    rng: Optional[random.Random] = None,
    drop_prob: float = 0.0,
    drop_rng=None,
    **overrides,
) -> Network:
    """Build one of the paper's networks by name."""
    rng = rng or random.Random(0)
    common = dict(drop_prob=drop_prob, drop_rng=drop_rng)
    if name == "mesh2d":
        return build_mesh(sim, _square_dims(num_nodes), **common, **overrides)
    if name == "mesh2d-adaptive":
        return build_mesh(
            sim, _square_dims(num_nodes), adaptive=True, rng=rng,
            **common, **overrides,
        )
    if name == "mesh3d":
        return build_mesh(sim, _cube_dims(num_nodes), **common, **overrides)
    if name == "torus2d":
        return build_mesh(
            sim, _square_dims(num_nodes), torus=True, **common, **overrides
        )
    if name == "fattree":
        return build_fattree(
            sim, levels=_log_k(num_nodes, 4), variant=FULL, rng=rng,
            **common, **overrides,
        )
    if name == "fattree-spray":
        # Two VCs per logical net so same-pair packets are concurrently in
        # flight (one VC would serialise them at the source leaf and no
        # reordering could ever happen).
        overrides.setdefault("vcs_per_net", 2)
        return build_fattree(
            sim, levels=_log_k(num_nodes, 4), variant=FULL, rng=rng,
            spray=True, **common, **overrides,
        )
    if name == "fattree-sf":
        return build_fattree(
            sim, levels=_log_k(num_nodes, 4), variant=FULL,
            mode=STORE_AND_FORWARD, rng=rng, **common, **overrides,
        )
    if name == "cm5":
        return build_fattree(
            sim, levels=_log_k(num_nodes, 4), variant=CM5, rng=rng,
            **common, **overrides,
        )
    if name == "butterfly":
        return build_butterfly(
            sim, stages=_log_k(num_nodes, 4), dilation=1, rng=rng,
            **common, **overrides,
        )
    if name == "multibutterfly":
        return build_butterfly(
            sim, stages=_log_k(num_nodes, 4), dilation=2, rng=rng,
            **common, **overrides,
        )
    if name == "multibutterfly-spray":
        overrides.setdefault("vcs_per_net", 2)
        return build_butterfly(
            sim, stages=_log_k(num_nodes, 4), dilation=2, rng=rng,
            spray=True, **common, **overrides,
        )
    raise ValueError(
        f"unknown network {name!r}; choose from "
        f"{NETWORK_NAMES + EXTENSION_NETWORK_NAMES}"
    )
