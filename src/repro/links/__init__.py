"""Physical links, virtual channels, and credit-based flow control."""

from .link import FlitFeeder, FlitSink, Link

__all__ = ["FlitFeeder", "FlitSink", "Link"]
