"""Physical links with virtual channels and credit-based flow control.

A :class:`Link` is a unidirectional channel between an upstream *feeder*
(a router input unit or a NIC injection port) and a downstream *sink*
(a router input port or a NIC ejection port).  Links are the only place
bandwidth is spent: one flit crosses the wire every ``cycles_per_flit``
cycles, where a flit is one 32-bit word and the paper's links are 8 bits
wide (4 bits for the CM-5 network).

Virtual channels share the physical wire flit-by-flit (demand multiplexing,
round-robin among VCs that have both a flit ready and a downstream credit).
Each VC is *allocated* to one packet at a time -- from the cycle its head
flit is granted until its tail flit has been delivered into the downstream
buffer -- which gives wormhole semantics: a blocked packet keeps its chain
of VCs and buffers, producing the secondary blocking the paper studies.

The request/reply logical networks (Section 3) are carried as disjoint VC
groups on the same link (demand multiplexed).  The CM-5's strictly
time-multiplexed networks are modelled by the network builder as two
half-bandwidth links instead.

Lossy-network support (Section 6.2): a link may be given a ``drop_prob``;
the drop decision is made once per packet when its head flit is granted,
the packet's flits then consume wire bandwidth but are never delivered.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..obs.events import EventKind
from ..packets import FLIT_BYTES, Packet
from ..sim import Simulator

#: Round-robin visit orders shared by every link with the same VC count:
#: ``_rr_orders(n)[s]`` is ``(s, s+1, ..., n-1, 0, ..., s-1)``.  Precomputing
#: them removes the per-candidate modulo from the per-flit arbitration loop.
_RR_ORDER_CACHE = {}


def _rr_orders(n: int):
    orders = _RR_ORDER_CACHE.get(n)
    if orders is None:
        orders = tuple(
            tuple((start + i) % n for i in range(n)) for start in range(n)
        )
        _RR_ORDER_CACHE[n] = orders
    return orders


class FlitFeeder:
    """Upstream side of a link: supplies flits for an allocated VC.

    ``has_flit_ready`` / ``take_flit`` are the required single-flit
    protocol.  The remaining methods are the *optional* bulk protocol
    used by the epoch kernel's link token runs (see
    ``docs/architecture.md``); the defaults fall back to single-flit
    behaviour, so a feeder that implements only the required pair works
    under every scheduler.
    """

    def has_flit_ready(self, link: "Link", vc: int) -> bool:
        raise NotImplementedError

    def take_flit(self, link: "Link", vc: int):
        """Remove and return ``(packet, is_head, is_tail)`` for this VC."""
        raise NotImplementedError

    # ------------------------------------------------- optional bulk protocol
    def take_flits(self, link: "Link", vc: int, max_flits: int):
        """Remove and return up to ``max_flits`` flits as a list of
        ``(packet, is_head, is_tail)`` tuples.

        Stops early when the feeder runs out of ready flits or after a
        tail flit (a bulk take never spans packets).  The default simply
        loops :meth:`take_flit`; feeders whose per-flit take has no
        externally observable side effects (the NIC injection side)
        override it with a counter bump.
        """
        flits = []
        while max_flits > 0 and self.has_flit_ready(link, vc):
            flit = self.take_flit(link, vc)
            flits.append(flit)
            max_flits -= 1
            if flit[2]:
                break
        return flits

    def untake_flits(self, link: "Link", vc: int, count: int) -> None:
        """Give back ``count`` flits claimed by :meth:`take_flits`.

        Only required of feeders whose :meth:`flit_run_handle` invites
        speculative claims (``("claim", n)``): when a token run truncates
        early (rival VC activity), the link returns the unused claim so
        the feeder's state is exactly what the classic per-flit path
        expects.
        """
        raise NotImplementedError

    def flit_run_handle(self, link: "Link", vc: int):
        """Describe how the epoch kernel may fuse a multi-flit run on
        ``vc``, or ``None`` (the default) for the generic per-flit path.

        Two cooperation modes::

            ("unit", transit, credit_link, credit_vc)
                Router input units: the link may read
                ``transit.flits_buffered`` / bump ``flits_forwarded``
                directly and return each flit's credit on
                ``credit_link.return_credit(credit_vc)`` -- valid only
                while the transit stays at the head of the unit's queue,
                which the run guarantees (it ends at the packet's tail).

            ("claim", remaining)
                NIC injection streams: ``remaining`` flits of the current
                packet are still unsent and may be bulk-claimed via
                :meth:`take_flits` (body flits have no observable side
                effects until the tail).
        """
        return None


class FlitSink:
    """Downstream side of a link: receives flits into a bounded buffer.

    ``accept_flit`` is the required single-flit protocol; the rest is the
    optional bulk protocol (single-flit fallbacks, see
    ``docs/architecture.md``).
    """

    #: True when body-flit deliveries are unobservable until the packet's
    #: tail arrives (NIC ejection assembly counters): the epoch kernel may
    #: then defer them and deliver in bulk via :meth:`accept_flits`.
    #: Router sinks must leave this False -- a buffered flit is immediately
    #: observable (cut-through forwarding, credit accounting, occupancy).
    passive_flit_sink = False

    def accept_flit(
        self, port: int, vc: int, packet: Packet, is_head: bool, is_tail: bool
    ) -> None:
        raise NotImplementedError

    # ------------------------------------------------- optional bulk protocol
    def accept_flits(
        self, port: int, vc: int, packet: Packet, count: int,
        first_is_head: bool = False,
    ) -> None:
        """Deliver ``count`` consecutive non-tail flits of ``packet``.

        The tail always arrives through :meth:`accept_flit` (it carries
        the packet-completion side effects).  The default unrolls into
        single-flit calls.
        """
        for i in range(count):
            self.accept_flit(port, vc, packet, first_is_head and i == 0, False)

    def flit_target(self, port: int, vc: int):
        """A per-``(port, vc)`` accept callable ``(packet, is_head,
        is_tail) -> None``, or ``None`` (the default).  Lets the epoch
        kernel's token runs skip the per-flit port/VC dispatch; the
        callable must be equivalent to :meth:`accept_flit` with ``port``
        and ``vc`` pre-bound.
        """
        return None


class Link:
    """One unidirectional physical channel."""

    __slots__ = (
        "sim",
        "name",
        "width_bytes",
        "cycles_per_flit",
        "vc_count",
        "net_of_vc",
        "sink",
        "sink_port",
        "_owners",
        "_feeders",
        "_vcs_by_net",
        "_credits",
        "_dropping",
        "_vc_capacity",
        "_busy",
        "_rr",
        "_rr_orders",
        "_post",
        "_complete_cb",
        "_accept_cb",
        # Epoch-kernel token runs (see docs/architecture.md): all `_s_*`
        # state describes the currently open multi-flit run, if any.
        "_ep",
        "_s_vc",
        "_s_clean",
        "_s_take",
        "_s_left",
        "_s_packet",
        "_s_head",
        "_s_dropping",
        "_s_defer",
        "_s_deferred",
        "_s_deferred_head",
        "_s_transit",
        "_s_ret_link",
        "_s_ret_vc",
        "_s_accept",
        "_s_step_cb",
        "_alloc_waiters",
        "drop_prob",
        "_drop_rng",
        "fault_drop_prob",
        "_fault_drop_rng",
        "_fault_drop_data",
        "_fault_drop_acks",
        "failed",
        "_last_start",
        "flits_carried",
        "packets_carried",
        "packets_dropped",
        "busy_cycles",
        "obs",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        width_bytes: int,
        vc_count: int,
        vc_buffer_flits: int,
        sink: Optional[FlitSink],
        sink_port: int,
        net_of_vc: Optional[Sequence[int]] = None,
        drop_prob: float = 0.0,
        drop_rng=None,
        cycles_per_flit: Optional[int] = None,
    ) -> None:
        if width_bytes <= 0 or vc_count <= 0 or vc_buffer_flits <= 0:
            raise ValueError("link parameters must be positive")
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1], got {drop_prob}"
            )
        if drop_prob > 0.0 and drop_rng is None:
            # Fail at construction, not at the first head flit: a lossy
            # link needs its random stream the same way set_fault_drop does.
            raise ValueError("a lossy link (drop_prob > 0) needs a drop_rng")
        self.sim = sim
        self.name = name
        self.width_bytes = width_bytes
        if cycles_per_flit is not None:
            # Explicit override: used for sub-byte widths (the CM-5's 4-bit
            # links) and for its strictly time-multiplexed logical networks.
            self.cycles_per_flit = cycles_per_flit
        else:
            self.cycles_per_flit = max(1, -(-FLIT_BYTES // width_bytes))
        self.vc_count = vc_count
        self.net_of_vc = list(net_of_vc) if net_of_vc is not None else [0] * vc_count
        if len(self.net_of_vc) != vc_count:
            raise ValueError("net_of_vc must have one entry per VC")
        self.sink = sink
        self.sink_port = sink_port
        self._owners: List[Optional[Packet]] = [None] * vc_count
        self._feeders: List[Optional[FlitFeeder]] = [None] * vc_count
        self._vcs_by_net = {}
        self._credits = [vc_buffer_flits] * vc_count
        self._dropping = [False] * vc_count
        self._vc_capacity = vc_buffer_flits
        self._busy = False
        self._rr = 0
        self._rr_orders = _rr_orders(vc_count)
        # Cached bound methods: the _kick/_complete pair runs once per flit
        # (the hottest path in the whole simulator), and an attribute lookup
        # on `self`/`sim` allocates a fresh bound-method object every time.
        self._post = sim.post
        self._complete_cb = self._complete
        self._accept_cb = sink.accept_flit if sink is not None else None
        # Token runs are an epoch-kernel capability: schedulers advertise it
        # via the `link_streams` flag so heap/bucket keep the classic
        # flit-by-flit event shape (their parity baseline).
        self._ep = bool(getattr(sim, "link_streams", False))
        self._s_vc = -1          # VC of the open run; -1 = no run
        self._s_clean = False    # False once any rival-VC state changed
        self._s_take = 0         # 0 generic, 1 input-unit inline, 2 claimed
        self._s_left = -2        # ungranted flits incl. tail (-2 = unknown)
        self._s_packet: Optional[Packet] = None
        self._s_head = False     # next delivery is the packet's head flit
        self._s_dropping = False
        self._s_defer = False    # sink is passive: batch body deliveries
        self._s_deferred = 0
        self._s_deferred_head = False
        self._s_transit = None   # mode-1 cooperation state
        self._s_ret_link: Optional["Link"] = None
        self._s_ret_vc = 0
        self._s_accept = None    # mode flit_target fast accept, if any
        self._s_step_cb = self._stream_step
        self._alloc_waiters: List[Callable[[], None]] = []
        self.drop_prob = drop_prob
        self._drop_rng = drop_rng
        self.fault_drop_prob = 0.0
        self._fault_drop_rng = None
        self._fault_drop_data = True
        self._fault_drop_acks = True
        self.failed = False
        #: Cycle the wire last started a flit transfer; None = never used.
        #: A dedicated sentinel (not a stats counter) so resetting or
        #: sharing the counters can neither blind the overclock guard nor
        #: make it fire spuriously.
        self._last_start: Optional[int] = None
        # statistics
        self.flits_carried = 0
        self.packets_carried = 0
        self.packets_dropped = 0
        self.busy_cycles = 0
        #: Protocol event bus; None = un-instrumented (the common case).
        self.obs = None

    def set_sink(self, sink: FlitSink, sink_port: int = 0) -> None:
        """Bind the downstream consumer (used for NIC ejection links, which
        are created when the topology is built, before NICs exist)."""
        if self._s_vc >= 0:
            self._close_stream()
        self.sink = sink
        self.sink_port = sink_port
        self._accept_cb = sink.accept_flit

    # ------------------------------------------------------------------ VCs
    def vcs_for_net(self, net: int) -> List[int]:
        """Indices of VCs belonging to logical network ``net``.

        Cached (the VC layout is fixed at construction); callers treat the
        result as read-only.
        """
        group = self._vcs_by_net.get(net)
        if group is None:
            group = [i for i, n in enumerate(self.net_of_vc) if n == net]
            self._vcs_by_net[net] = group
        return group

    def vc_free(self, vc: int) -> bool:
        return self._owners[vc] is None

    def owner(self, vc: int) -> Optional[Packet]:
        return self._owners[vc]

    def fail(self) -> None:
        """Take this link out of service (Section 1.1: network faults).

        A failed link accepts no new packets; routes with alternative
        candidates (fat-tree up-paths, multibutterfly copies, adaptive mesh
        VCs) flow around it.  Failing a link that is some pair's only path
        partitions the network for that pair -- the caller's responsibility.
        Packets already holding the link finish crossing it.
        """
        self.failed = True

    def repair(self) -> None:
        """Return a failed link to service (the other half of a fault event).

        Upstream feeders that found every VC refused while the link was down
        registered alloc waiters; firing them here lets blocked routers and
        NICs re-try immediately instead of waiting for an unrelated VC
        release.  Safe to call on a healthy link (no-op beyond the kick).
        """
        self.failed = False
        if self._alloc_waiters:
            waiters = self._alloc_waiters
            self._alloc_waiters = []
            for fn in waiters:
                fn()
        self._kick()

    def set_fault_drop(
        self, prob: float, rng=None, data: bool = True, acks: bool = True
    ) -> None:
        """Start a transient loss episode on this link.

        Unlike the constructor's static ``drop_prob`` (which models a
        permanently unreliable fabric and only ever discards data packets),
        a fault-injected burst can also claim acks -- the ack-network-only
        loss scenario that exercises the duplicate-elimination path.
        """
        if not 0.0 <= prob <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        self.fault_drop_prob = prob
        if rng is not None:
            self._fault_drop_rng = rng
        elif self._fault_drop_rng is None:
            self._fault_drop_rng = self._drop_rng
        if prob > 0.0 and self._fault_drop_rng is None:
            raise ValueError("a loss burst needs a random stream")
        self._fault_drop_data = data
        self._fault_drop_acks = acks

    def clear_fault_drop(self) -> None:
        """End a transient loss episode (packets in flight are unaffected)."""
        self.fault_drop_prob = 0.0

    def _decide_drop(self, packet: Packet) -> bool:
        if self.drop_prob > 0.0 and packet.is_data:
            if self._drop_rng.random() < self.drop_prob:
                return True
        if self.fault_drop_prob > 0.0:
            applies = self._fault_drop_data if packet.is_data else self._fault_drop_acks
            if applies and self._fault_drop_rng.random() < self.fault_drop_prob:
                return True
        return False

    def allocate_vc(
        self, packet: Packet, feeder: FlitFeeder, candidates: Sequence[int]
    ) -> Optional[int]:
        """Try to allocate one of ``candidates`` to ``packet``.

        Returns the VC index, or None if all candidates are held by other
        packets.  The caller may register with :meth:`add_alloc_waiter` to be
        re-tried when a VC frees.
        """
        if self.failed:
            return None
        for vc in candidates:
            if self._owners[vc] is None:
                self._owners[vc] = packet
                self._feeders[vc] = feeder
                self._dropping[vc] = self._decide_drop(packet)
                if vc != self._s_vc:
                    # A rival VC gained a packet: any open token run must
                    # fall back to per-flit arbitration from here on.
                    self._s_clean = False
                return vc
        return None

    def add_alloc_waiter(self, fn: Callable[[], None]) -> None:
        """Call ``fn`` next time a VC on this link is released."""
        self._alloc_waiters.append(fn)

    # ------------------------------------------------------------ data path
    def notify_flit_ready(self, vc: int) -> None:
        """Feeder signals that ``vc`` may now have work; try to transfer."""
        if vc != self._s_vc:
            self._s_clean = False
        self._kick()

    def return_credit(self, vc: int) -> None:
        """Sink signals that one flit left the downstream buffer of ``vc``."""
        if self._credits[vc] >= self._vc_capacity:
            raise RuntimeError(f"{self.name}: credit overflow on VC {vc}")
        self._credits[vc] += 1
        if vc != self._s_vc:
            self._s_clean = False
        self._kick()

    def _kick(self) -> None:
        if self._busy:
            return
        s_vc = self._s_vc
        if s_vc >= 0:
            if self._s_clean:
                # Token-run fast path: no rival VC became eligible since the
                # run opened, so classic round-robin arbitration (which would
                # start at s_vc + 1, find every rival ineligible, and wrap
                # back to s_vc) is provably redundant.  Any eligibility
                # change flows through notify_flit_ready / return_credit /
                # allocate_vc, each of which clears _s_clean first.
                take = self._s_take
                if take and self._s_left <= 1:
                    # Only the tail remains: grant it through the classic
                    # take so packet-completion side effects stay per-flit.
                    take = 0
                credits = self._credits
                if take == 1:
                    if self._s_transit.flits_buffered <= 0:
                        return
                elif take == 0:
                    if not self._feeders[s_vc].has_flit_ready(self, s_vc):
                        return
                if not self._s_dropping:
                    if credits[s_vc] <= 0:
                        return
                    credits[s_vc] -= 1
                self._busy = True
                now = self.sim.now
                last = self._last_start
                if last is not None and now - last < self.cycles_per_flit:
                    raise RuntimeError(
                        f"{self.name}: wire overclocked (double transfer)"
                    )
                self._last_start = now
                self.flits_carried += 1
                self.busy_cycles += self.cycles_per_flit
                if take == 1:
                    transit = self._s_transit
                    transit.flits_buffered -= 1
                    transit.flits_forwarded += 1
                    self._s_ret_link.return_credit(self._s_ret_vc)
                elif take == 0:
                    packet, is_head, is_tail = self._feeders[s_vc].take_flit(
                        self, s_vc
                    )
                    if is_tail:
                        self._close_stream()
                        self._post(
                            self.cycles_per_flit, self._complete_cb, s_vc,
                            packet, is_head, True,
                        )
                        return
                self._s_left -= 1
                self._post(self.cycles_per_flit, self._s_step_cb)
                return
            self._close_stream()
        feeders = self._feeders
        dropping_flags = self._dropping
        credits = self._credits
        if self.vc_count == 1:
            # Single-VC fast path (every mesh/butterfly wire): no
            # arbitration loop, no round-robin pointer to maintain.
            feeder = feeders[0]
            if (
                feeder is None
                or (credits[0] <= 0 and not dropping_flags[0])
                or not feeder.has_flit_ready(self, 0)
            ):
                return
            chosen = 0
        else:
            chosen = -1
            for vc in self._rr_orders[self._rr]:
                feeder = feeders[vc]
                if feeder is None:
                    continue
                if credits[vc] <= 0 and not dropping_flags[vc]:
                    continue
                if feeder.has_flit_ready(self, vc):
                    chosen = vc
                    break
            if chosen < 0:
                return
            self._rr = chosen + 1 if chosen + 1 < self.vc_count else 0
        dropping = dropping_flags[chosen]
        if not dropping:
            credits[chosen] -= 1
        # Mark the wire busy BEFORE taking the flit: take_flit returns a
        # credit upstream, and on cyclic topologies that credit-return chain
        # can run all the way around a ring and re-enter this link's _kick
        # within the same call stack.  Claiming the wire first makes the
        # re-entry a no-op instead of a double transfer.
        self._busy = True
        now = self.sim.now
        last = self._last_start
        if last is not None and now - last < self.cycles_per_flit:
            raise RuntimeError(f"{self.name}: wire overclocked (double transfer)")
        self._last_start = now
        packet, is_head, is_tail = feeder.take_flit(self, chosen)
        self.flits_carried += 1
        self.busy_cycles += self.cycles_per_flit
        if (
            self._ep
            and not is_tail
            and self._maybe_stream(chosen, feeder, packet, is_head, dropping)
        ):
            return
        self._post(
            self.cycles_per_flit, self._complete_cb, chosen, packet, is_head,
            is_tail,
        )

    def _maybe_stream(
        self, vc: int, feeder: FlitFeeder, packet: Packet, is_head: bool,
        dropping: bool,
    ) -> bool:
        """After a classic grant of a non-tail flit under the epoch kernel,
        try to open a token run on ``vc``.

        A run may open only when no rival VC is currently eligible --
        then, and for as long as no rival state changes (``_s_clean``),
        every subsequent arbitration would provably re-pick ``vc``, so
        flits flow through :meth:`_stream_step` records instead of full
        ``_complete`` events.  Returns True when the granted flit's
        completion has been scheduled as a run step (the caller skips the
        classic post).
        """
        sink = self.sink
        if sink is None:
            return False
        credits = self._credits
        feeders = self._feeders
        dropping_flags = self._dropping
        for rival in range(self.vc_count):
            if rival == vc:
                continue
            rival_feeder = feeders[rival]
            if rival_feeder is None:
                continue
            if credits[rival] <= 0 and not dropping_flags[rival]:
                continue
            if rival_feeder.has_flit_ready(self, rival):
                return False
        take = 0
        left = -2
        handle = getattr(feeder, "flit_run_handle", None)
        info = handle(self, vc) if handle is not None else None
        if info is not None:
            kind = info[0]
            if kind == "unit":
                left = packet.flits - info[1].flits_forwarded
                if left >= 2:
                    take = 1
                    self._s_transit = info[1]
                    self._s_ret_link = info[2]
                    self._s_ret_vc = info[3]
            elif kind == "claim":
                left = info[1]
                if left >= 2:
                    take = 2
                    # Claim every body flit up front; the tail stays with
                    # the feeder and a truncated run hands the surplus back
                    # (untake_flits) before classic arbitration resumes.
                    feeder.take_flits(self, vc, left - 1)
            if take == 0:
                left = -2
        self._s_vc = vc
        self._s_clean = True
        self._s_take = take
        self._s_left = left
        self._s_packet = packet
        self._s_head = is_head
        self._s_dropping = dropping
        self._s_deferred = 0
        self._s_deferred_head = False
        if not dropping and getattr(sink, "passive_flit_sink", False):
            self._s_defer = True
            self._s_accept = None
        else:
            self._s_defer = False
            target = getattr(sink, "flit_target", None)
            self._s_accept = (
                target(self.sink_port, vc) if target is not None else None
            )
        self._post(self.cycles_per_flit, self._s_step_cb)
        return True

    def _stream_step(self) -> None:
        """Arrival of one in-run flit (the epoch kernel's token record).

        Mirrors the non-tail half of :meth:`_complete` exactly: free the
        wire, deliver (or defer) the flit, then kick.  The tail never
        arrives here -- the fast path hands it back to the classic grant.
        """
        self._busy = False
        if not self._s_dropping:
            if self._s_defer:
                if not self._s_deferred:
                    self._s_deferred_head = self._s_head
                self._s_deferred += 1
            else:
                accept = self._s_accept
                if accept is not None:
                    accept(self._s_packet, self._s_head, False)
                else:
                    self._accept_cb(
                        self.sink_port, self._s_vc, self._s_packet,
                        self._s_head, False,
                    )
        self._s_head = False
        self._kick()

    def _close_stream(self) -> None:
        """End the open token run, restoring exact classic state: hand
        back unclaimed body flits and flush any deferred deliveries."""
        vc = self._s_vc
        self._s_vc = -1
        if self._s_take == 2 and self._s_left > 1:
            self._feeders[vc].untake_flits(self, vc, self._s_left - 1)
        if self._s_deferred:
            count = self._s_deferred
            self._s_deferred = 0
            self.sink.accept_flits(
                self.sink_port, vc, self._s_packet, count,
                self._s_deferred_head,
            )
        self._s_packet = None
        self._s_transit = None
        self._s_ret_link = None
        self._s_accept = None

    def _complete(self, vc: int, packet: Packet, is_head: bool, is_tail: bool) -> None:
        self._busy = False
        dropping = self._dropping[vc]
        if is_tail:
            # Release the VC before delivering the tail flit: delivery may
            # trigger the downstream packet to advance and a waiter to want
            # this VC in the same cycle.
            self._owners[vc] = None
            self._feeders[vc] = None
            self._dropping[vc] = False
            self.packets_carried += 1
            if dropping:
                self.packets_dropped += 1
                if self.obs is not None:
                    self.obs.emit(
                        self.sim.now, EventKind.LINK_DROP, -1,
                        uid=packet.uid, src=packet.src, dst=packet.dst,
                        info=self.name,
                    )
            if self._alloc_waiters:
                waiters = self._alloc_waiters
                self._alloc_waiters = []
                for fn in waiters:
                    fn()
        if not dropping:
            self._accept_cb(self.sink_port, vc, packet, is_head, is_tail)
        self._kick()

    # ------------------------------------------------------------- metrics
    def utilization(self, elapsed_cycles: int) -> float:
        """Ratio of busy wire-cycles to elapsed cycles.

        Deliberately NOT clamped to 1.0: a value above 1.0 means the wire
        was charged for more flit-time than physically existed -- exactly
        the double-transfer accounting bug the overclock guard exists to
        catch -- and clamping would silently mask it.  Display code that
        wants a tidy percentage clamps for itself (see
        :func:`repro.metrics.link_utilization_report`).
        """
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_cycles / elapsed_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} vcs={self.vc_count} busy={self._busy}>"
