"""The sweep engine: parallel, cache-backed execution of experiment specs.

The paper's evaluation is sweeps -- Table 3 parameter grids, Figure 4
machine sizes, the Section 1 operating-range curve -- and every point is an
independent simulation.  :class:`SweepEngine` exploits that: it executes an
iterable of :class:`~repro.experiments.spec.ExperimentSpec` across a
``ProcessPoolExecutor``, consults an on-disk result cache first, isolates
per-point failures (a crashed point becomes an errored :class:`SweepPoint`
instead of killing the sweep), and reports progress through a callback
and/or a :class:`repro.obs.EventBus`.

Determinism: each spec carries its own seed and the simulation derives all
randomness from it (``RngFactory``), so a point's result is identical
whether it runs serially, in a worker process, or comes from the cache --
the property the CI parallel-smoke job asserts.

Cache layout (``benchmarks/results/.cache/`` by default, override with the
``cache_dir`` argument or ``REPRO_SWEEP_CACHE``)::

    <spec content hash>-<code version prefix>.json
        {"spec": <spec dict>, "code_version": <full hash>, "result": {...}}

The key pairs the spec's content hash with a *code version* (a hash over
the package's own source files), so editing the simulator invalidates every
cached result without any manual bookkeeping.  Only portable specs (traffic
expressed as a registry :class:`~repro.traffic.TrafficSpec`) are cached or
dispatched to workers; specs holding opaque traffic callables silently run
in-process, uncached.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from ..nic import NifdyParams
from ..obs import EventBus, EventKind
from .spec import ExperimentSpec, SpecSerializationError

#: Default on-disk cache location (relative to the invocation directory,
#: which for this repo's CLI, tests, and benches is the repo root).
DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_SWEEP_CACHE", "benchmarks/results/.cache")
)

# The slim result shape is owned by the results schema (the same field
# list backs the sweep cache, ``--json`` CLI output, CSV export, and the
# report), so the engine can never drift from what the loaders expect.
from ..report.schema import RUN_STATS_FIELDS as _RESULT_FIELDS

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """A hash over the package's own source files: the cache's second key.

    Any edit to ``repro``'s code changes this value, invalidating every
    cached sweep result at once.
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


@dataclass
class SweepPoint:
    """One spec's outcome in a sweep.

    The first four fields keep the pre-engine constructor shape
    (``SweepPoint(label, params, delivered, cycles)``); the rest describe
    how the engine obtained the result.  ``cycles`` is the *actual*
    simulated cycle count (summed over constituent runs for aggregated
    points), not the requested horizon, so :attr:`throughput` stays honest
    for early-completing workloads.
    """

    label: str
    params: Optional[NifdyParams]
    delivered: int
    cycles: int
    sent: int = 0
    completed: bool = True
    order_violations: int = 0
    abandoned: int = 0
    spec_hash: Optional[str] = None
    cached: bool = False
    error: Optional[str] = None
    wall_s: float = 0.0
    stall_report: Optional[str] = None
    #: Invariant violations (dicts from
    #: :meth:`repro.validate.Violation.to_dict`) when the spec ran with
    #: ``observe.validate``; empty otherwise.
    violations: List[Dict] = field(default_factory=list)
    #: The point hit the engine's per-point wall-clock timeout (its
    #: ``error`` carries the diagnosis; never cached).
    timed_out: bool = False
    #: The worker process executing (or co-resident with) this point died
    #: hard -- ``os._exit``, segfault, OOM kill -- rather than raising.
    worker_died: bool = False
    #: The farm quarantined this point after it killed workers repeatedly
    #: (see :class:`repro.farm.FarmPolicy`); never set by the bare engine.
    poisoned: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def throughput(self) -> float:
        return 1000.0 * self.delivered / self.cycles if self.cycles else 0.0


@dataclass
class SweepStats:
    """What one engine (cumulatively) did: the cache-hit ledger."""

    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    errors: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    wall_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.points if self.points else 0.0

    def as_dict(self) -> Dict:
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "hit_rate": round(self.hit_rate, 4),
            "wall_s": round(self.wall_s, 3),
        }


class ResultCache:
    """Content-addressed JSON files: spec hash + code version -> result."""

    def __init__(self, directory: Path = DEFAULT_CACHE_DIR):
        self.directory = Path(directory)

    def _path(self, spec: ExperimentSpec) -> Path:
        return self.directory / f"{spec.content_hash()}-{code_version()[:12]}.json"

    def get(self, spec: ExperimentSpec) -> Optional[Dict]:
        path = self._path(spec)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return doc.get("result")

    def put(self, spec: ExperimentSpec, result: Dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "spec": spec.to_dict(),
            "code_version": code_version(),
            "result": result,
        }
        path = self._path(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)  # atomic: concurrent sweeps race benignly


def _slim_result(result) -> Dict:
    """The picklable, cacheable subset of an ExperimentResult."""
    return {name: getattr(result, name) for name in _RESULT_FIELDS}


def _execute_spec_dict(spec_dict: Dict) -> Dict:
    """Worker entry point: rebuild the spec from data, run it, return the
    slim result (or a traceback).  Takes/returns only plain data so it
    crosses process boundaries under any start method."""
    t0 = time.perf_counter()
    try:
        spec = ExperimentSpec.from_dict(spec_dict)
        result = _execute_in_process(spec)
    except Exception:  # noqa: BLE001 - isolation is the point
        result = {"error": traceback.format_exc()}
    result.setdefault("wall_s", time.perf_counter() - t0)
    return result


def _execute_in_process(spec: ExperimentSpec) -> Dict:
    from .runner import run_experiment  # deferred: avoids an import cycle

    t0 = time.perf_counter()
    try:
        result = _slim_result(run_experiment(spec))
    except Exception:  # noqa: BLE001 - isolation is the point
        result = {"error": traceback.format_exc()}
    result["wall_s"] = time.perf_counter() - t0
    return result


def _point_from(spec: ExperimentSpec, result: Dict, *, cached: bool) -> SweepPoint:
    label = spec.label or spec.describe()
    wall_s = result.get("wall_s", 0.0)
    if "error" in result:
        return SweepPoint(
            label, spec.nifdy_params, 0, 0, spec_hash=_safe_hash(spec),
            completed=False, error=result["error"], wall_s=wall_s,
            timed_out=bool(result.get("timed_out")),
            worker_died=bool(result.get("worker_died")),
            poisoned=bool(result.get("poisoned")),
        )
    return SweepPoint(
        label,
        spec.nifdy_params,
        result["delivered"],
        result["cycles"],
        sent=result["sent"],
        completed=result["completed"],
        order_violations=result["order_violations"],
        abandoned=result["abandoned"],
        spec_hash=_safe_hash(spec),
        cached=cached,
        wall_s=wall_s,
        stall_report=result.get("stall_report"),
        violations=list(result.get("violations") or ()),
    )


def _safe_hash(spec: ExperimentSpec) -> Optional[str]:
    try:
        return spec.content_hash()
    except SpecSerializationError:
        return None


class SweepEngine:
    """Executes iterables of specs: cache first, then a process pool.

    ``jobs``: worker processes (``<= 1`` runs serially in-process, which is
    also the fallback for non-portable specs).  ``cache``: consult/populate
    the on-disk result cache.  ``progress``: ``(done, total, point) ->
    None`` called after every point resolves.  ``bus``: an optional
    :class:`repro.obs.EventBus` receiving one ``sweep_point`` /
    ``sweep_cache_hit`` / ``sweep_error`` event per point, so sweep
    progress rides the same instrumentation rails as everything else.

    ``point_timeout`` (seconds, default off) bounds each point's wall
    clock: a hung or crashed worker degrades to an errored
    :class:`SweepPoint` carrying a diagnosis (``timed_out=True``, never
    cached) instead of wedging the sweep; points merely *queued* behind
    the hung one are rescued into a fresh pool.  Enforcing a timeout
    requires a worker process, so portable specs go through the pool even
    at ``jobs=1``; non-portable specs still run in-process, untimed.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[Path] = None,
        progress: Optional[Callable[[int, int, SweepPoint], None]] = None,
        bus: Optional[EventBus] = None,
        point_timeout: Optional[float] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR) if cache else None
        self.progress = progress
        self.bus = bus
        self.point_timeout = point_timeout
        self.stats = SweepStats()

    # ----------------------------------------------------------------- run
    def run(self, specs: Iterable[ExperimentSpec]) -> List[SweepPoint]:
        """Execute every spec; results come back in input order."""
        specs = list(specs)
        started = time.perf_counter()
        total = len(specs)
        points: List[Optional[SweepPoint]] = [None] * total
        done = 0

        def settle(index: int, point: SweepPoint) -> None:
            nonlocal done
            points[index] = point
            done += 1
            self.stats.points += 1
            if point.error is not None:
                self.stats.errors += 1
                if point.timed_out:
                    self.stats.timeouts += 1
                if point.worker_died:
                    self.stats.worker_deaths += 1
            elif point.cached:
                self.stats.cache_hits += 1
            else:
                self.stats.executed += 1
            if self.bus is not None:
                kind = (
                    EventKind.SWEEP_ERROR if point.error is not None
                    else EventKind.SWEEP_CACHE_HIT if point.cached
                    else EventKind.SWEEP_POINT
                )
                self.bus.emit(done, kind, -1, info=point.label)
            if self.progress is not None:
                self.progress(done, total, point)

        pending: List[int] = []  # indices that need actual execution
        for index, spec in enumerate(specs):
            if self.cache is not None and self._cacheable(spec):
                hit = self.cache.get(spec)
                if hit is not None:
                    settle(index, _point_from(spec, hit, cached=True))
                    continue
            pending.append(index)

        if self.jobs > 1 or self.point_timeout is not None:
            self._run_parallel(specs, pending, settle)
        else:
            for index in pending:
                self._run_one(specs[index], index, settle)

        self.stats.wall_s += time.perf_counter() - started
        return [p for p in points if p is not None]

    # ------------------------------------------------------------- internals
    @staticmethod
    def _cacheable(spec: ExperimentSpec) -> bool:
        """Portable AND safe to share a cache entry.  ``observe`` is
        excluded from :meth:`~ExperimentSpec.content_hash` (instrumentation
        does not change results), but a *validated* run's result carries
        ``violations`` that an unvalidated run of the same spec would not --
        so validated runs bypass the cache in both directions."""
        if not spec.portable:
            return False
        return spec.observe is None or not spec.observe.validate

    def _finish_executed(self, spec: ExperimentSpec, result: Dict,
                         index: int, settle) -> None:
        if (
            self.cache is not None and self._cacheable(spec)
            and "error" not in result
        ):
            self.cache.put(spec, result)
        settle(index, _point_from(spec, result, cached=False))

    def _run_one(self, spec: ExperimentSpec, index: int, settle) -> None:
        self._finish_executed(spec, _execute_in_process(spec), index, settle)

    def _run_parallel(self, specs, pending, settle) -> None:
        portable = [i for i in pending if specs[i].portable]
        local = [i for i in pending if not specs[i].portable]
        while portable:
            # Each generation settles everything except points that were
            # still queued when a timeout forced the pool down; those are
            # rescued into a fresh pool.  Every generation with survivors
            # settles at least one point, so this terminates.
            portable = self._run_pool(specs, portable, settle)
        for i in local:  # opaque traffic callables cannot cross processes
            self._run_one(specs[i], i, settle)

    def _run_pool(self, specs, indices, settle) -> List[int]:
        """One pool generation.  The first timeout or pool break settles
        ONLY the point we were waiting on; every other unresolved future is
        rescued into the next generation, because the executor's call-queue
        prefetch marks queued futures as running, making "starved behind
        the failure" indistinguishable from "genuinely failing" here.

        * Timeout: the waited point is provably stuck (it had the full
          bound); it settles ``timed_out`` and the stuck worker is
          terminated.
        * :class:`BrokenProcessPool` (a worker died hard -- ``os._exit``,
          segfault, OOM kill -- which poisons the *whole* executor): the
          waited point settles errored with a ``worker_died`` marker and is
          never cached.  With several workers the victim can be collateral
          rather than the killer, but a rescued killer breaks its own next
          generation and settles there, so attribution converges.

        Either way a generation with survivors settles at least one point,
        so the rescue loop terminates."""
        rescue: List[int] = []
        hung = False       # a worker is wedged and must be terminated
        degraded = False   # this pool is done taking new results
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(indices)))
        try:
            futures = {}
            for i in indices:
                try:
                    futures[i] = pool.submit(
                        _execute_spec_dict, specs[i].to_dict()
                    )
                except Exception:  # noqa: BLE001 - pool broke mid-submit
                    if not futures:
                        raise  # a fresh pool that cannot start at all
                    rescue.append(i)  # the break settles via a wait below
            for i, future in futures.items():
                if degraded:
                    if future.done() and not future.cancelled():
                        try:  # finished before the failure was detected
                            result = future.result(timeout=0)
                        except BrokenProcessPool:
                            rescue.append(i)
                            continue
                        except Exception:  # noqa: BLE001
                            result = {"error": traceback.format_exc()}
                    else:
                        future.cancel()
                        rescue.append(i)
                        continue
                else:
                    try:
                        result = future.result(timeout=self.point_timeout)
                    except FuturesTimeout:
                        hung = degraded = True
                        result = {
                            "error": (
                                f"point exceeded the {self.point_timeout}s "
                                "wall-clock timeout (worker hung or "
                                "crashed); worker terminated, point not "
                                "cached"
                            ),
                            "timed_out": True,
                        }
                    except BrokenProcessPool:
                        degraded = True
                        result = {
                            "error": (
                                "worker process died abruptly while this "
                                "point was in flight (hard exit, segfault, "
                                "or OOM kill); queued points rescued into "
                                "a fresh pool, point not cached"
                            ),
                            "worker_died": True,
                        }
                    except Exception:  # noqa: BLE001 - pool/pickling failures
                        result = {"error": traceback.format_exc()}
                self._finish_executed(specs[i], result, i, settle)
        finally:
            if hung:
                # The stuck worker would otherwise block shutdown (and
                # interpreter exit) indefinitely.
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
            pool.shutdown(wait=not degraded, cancel_futures=degraded)
        return rescue
