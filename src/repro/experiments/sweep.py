"""Parameter- and load-sweep helpers, expressed as spec generators.

The paper's methodology is sweeps: NIFDY parameters per network (Table 3),
buffer/OPT sizes across machine sizes (Figure 4), offered load across the
operating range (Section 1).  Each helper here comes in two layers:

* a **spec generator** (``nifdy_param_specs`` / ``offered_load_specs`` /
  ``machine_size_specs``) that turns the sweep description into a flat
  list of :class:`~repro.experiments.spec.ExperimentSpec` -- pure data a
  :class:`~repro.experiments.engine.SweepEngine` can execute in parallel
  and cache;
* the classic **one-call helper** (``sweep_nifdy_params`` / ...) that
  generates the specs, runs them through an engine (a private serial,
  uncached one by default -- pass ``engine=`` to parallelise or cache),
  and folds the points back into the shapes the benches plot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..nic import CollectiveParams, NifdyParams, ReorderParams
from ..obs import Observability
from ..traffic import AllReduceConfig, IncastConfig, SyntheticConfig
from .engine import SweepEngine, SweepPoint
from .spec import ExperimentSpec
from .workloads import allreduce, heavy_synthetic, incast, light_synthetic


def _engine_or_default(engine: Optional[SweepEngine]) -> SweepEngine:
    return engine if engine is not None else SweepEngine(jobs=1, cache=False)


def params_label(params: NifdyParams) -> str:
    return (
        f"O={params.opt_size} B={params.pool_size} "
        f"D={params.dialogs} W={params.window}"
    )


# ------------------------------------------------------------------ Table 3
def nifdy_param_specs(
    network: str,
    grid: Iterable[NifdyParams],
    *,
    num_nodes: int = 64,
    run_cycles: int = 10_000,
    seed: int = 0,
    combine_light_and_heavy: bool = True,
) -> List[ExperimentSpec]:
    """The Table-3 grid as specs: one heavy (and optionally one light)
    fixed-horizon run per parameter set, in grid order."""
    traffics = [heavy_synthetic()]
    if combine_light_and_heavy:
        traffics.append(light_synthetic())
    specs = []
    for params in grid:
        for traffic in traffics:
            specs.append(
                ExperimentSpec(
                    network=network,
                    traffic=traffic,
                    num_nodes=num_nodes,
                    nic_mode="nifdy-",
                    nifdy_params=params,
                    run_cycles=run_cycles,
                    seed=seed,
                    label=f"{params_label(params)} [{traffic.name}]",
                )
            )
    return specs


def sweep_nifdy_params(
    network: str,
    grid: Iterable[NifdyParams],
    *,
    num_nodes: int = 64,
    run_cycles: int = 10_000,
    seed: int = 0,
    combine_light_and_heavy: bool = True,
    engine: Optional[SweepEngine] = None,
) -> List[SweepPoint]:
    """Score NIFDY parameter sets on a network (Table 3 methodology:
    "chosen to give the best average performance with both test traffic
    patterns").  Returns points sorted best-first; each point aggregates
    the heavy(+light) runs for one parameter set, and ``cycles`` is the
    summed *actual* simulated cycles (not the requested horizon), so
    ``throughput`` stays honest for early-completing workloads."""
    grid = list(grid)
    specs = nifdy_param_specs(
        network, grid, num_nodes=num_nodes, run_cycles=run_cycles, seed=seed,
        combine_light_and_heavy=combine_light_and_heavy,
    )
    results = _engine_or_default(engine).run(specs)
    per_params = 2 if combine_light_and_heavy else 1
    points = []
    for i, params in enumerate(grid):
        group = results[i * per_params:(i + 1) * per_params]
        bad = next((p for p in group if not p.ok), None)
        points.append(
            SweepPoint(
                params_label(params),
                params,
                sum(p.delivered for p in group),
                sum(p.cycles for p in group),
                sent=sum(p.sent for p in group),
                completed=all(p.completed for p in group),
                cached=all(p.cached for p in group),
                error=bad.error if bad is not None else None,
                wall_s=sum(p.wall_s for p in group),
            )
        )
    points.sort(key=lambda point: point.delivered, reverse=True)
    return points


def default_param_grid(
    opt_sizes: Sequence[int] = (2, 4, 8),
    windows: Sequence[int] = (0, 2, 8),
    pool_size: int = 8,
) -> List[NifdyParams]:
    """The (O, W) grid the Table 3 bench sweeps (W=0 disables bulk)."""
    grid = []
    for opt in opt_sizes:
        for window in windows:
            dialogs = 1 if window else 0
            grid.append(
                NifdyParams(
                    opt_size=opt, pool_size=pool_size,
                    dialogs=dialogs, window=window,
                )
            )
    return grid


# ---------------------------------------------------------------- Section 1
def offered_load_specs(
    network: str,
    gaps: Sequence[int],
    *,
    nic_mode: str = "plain",
    num_nodes: int = 64,
    run_cycles: int = 20_000,
    seed: int = 0,
    nifdy_params: Optional[NifdyParams] = None,
) -> List[ExperimentSpec]:
    """The operating-range curve as specs (larger gap = lighter load)."""
    return [
        ExperimentSpec(
            network=network,
            traffic=heavy_synthetic(
                SyntheticConfig.heavy_traffic(send_gap_cycles=gap)
            ),
            num_nodes=num_nodes,
            nic_mode=nic_mode,
            nifdy_params=nifdy_params,
            run_cycles=run_cycles,
            seed=seed,
            label=f"gap={gap}",
        )
        for gap in gaps
    ]


def sweep_offered_load(
    network: str,
    gaps: Sequence[int],
    *,
    nic_mode: str = "plain",
    num_nodes: int = 64,
    run_cycles: int = 20_000,
    seed: int = 0,
    nifdy_params: Optional[NifdyParams] = None,
    engine: Optional[SweepEngine] = None,
) -> List[SweepPoint]:
    """Delivered throughput vs offered load (larger gap = lighter load):
    the Section 1 operating-range curve."""
    specs = offered_load_specs(
        network, gaps, nic_mode=nic_mode, num_nodes=num_nodes,
        run_cycles=run_cycles, seed=seed, nifdy_params=nifdy_params,
    )
    return _engine_or_default(engine).run(specs)


# ------------------------------------------------- reorder scenario pack
#: The three receiver-side recovery variants the scenario pack compares.
REORDER_VARIANT_MODES = ("reorder-window", "reorder-bitmap", "reorder-jain")


def reorder_variant_specs(
    network: str = "fattree-spray",
    *,
    nic_modes: Sequence[str] = REORDER_VARIANT_MODES,
    loss_rates: Sequence[float] = (0.0, 0.001, 0.01),
    path_skews: Sequence[int] = (0, 2, 8),
    traffic=None,
    num_nodes: int = 16,
    seed: int = 0,
    max_cycles: int = 3_000_000,
    reorder_params: Optional[ReorderParams] = None,
    validate: bool = True,
) -> List[ExperimentSpec]:
    """The scenario-pack comparison grid as specs: receiver variant x
    loss rate x path skew on a spraying fabric, run to completion under
    the invariant monitor.

    Incast traffic by default -- the pattern the recovery variants exist
    for: synchronised bursts on a multipath fabric, so every trial sees
    genuine in-network reordering *and* ack implosion at the sink.
    """
    traffic = traffic or incast(IncastConfig(rounds=3, packets_per_round=6))
    specs = []
    for mode in nic_modes:
        for loss in loss_rates:
            for skew in path_skews:
                specs.append(
                    ExperimentSpec(
                        network=network,
                        traffic=traffic,
                        num_nodes=num_nodes,
                        nic_mode=mode,
                        reorder_params=reorder_params,
                        max_cycles=max_cycles,
                        seed=seed,
                        drop_prob=loss,
                        network_overrides={"path_skew": skew},
                        observe=Observability(validate=True)
                        if validate else None,
                        label=f"{mode} loss={loss:.2%} skew={skew}",
                    )
                )
    return specs


def sweep_reorder_variants(
    network: str = "fattree-spray",
    *,
    nic_modes: Sequence[str] = REORDER_VARIANT_MODES,
    loss_rates: Sequence[float] = (0.0, 0.001, 0.01),
    path_skews: Sequence[int] = (0, 2, 8),
    traffic=None,
    num_nodes: int = 16,
    seed: int = 0,
    reorder_params: Optional[ReorderParams] = None,
    engine: Optional[SweepEngine] = None,
) -> List[SweepPoint]:
    """Run the receiver-variant grid; points come back in spec order
    (variant-major), each carrying delivery, abandonment, order-violation
    and invariant-violation counts."""
    specs = reorder_variant_specs(
        network, nic_modes=nic_modes, loss_rates=loss_rates,
        path_skews=path_skews, traffic=traffic, num_nodes=num_nodes,
        seed=seed, reorder_params=reorder_params,
    )
    return _engine_or_default(engine).run(specs)


# --------------------------------------------------------- NIC collectives
def collective_barrier_specs(
    network: str = "fattree",
    *,
    barrier_modes: Sequence[str] = ("host", "nic"),
    fanouts: Sequence[int] = (4,),
    traffic=None,
    num_nodes: int = 16,
    seed: int = 0,
    max_cycles: int = 3_000_000,
    validate: bool = True,
) -> List[ExperimentSpec]:
    """The host-vs-NIC barrier comparison grid as specs: barrier mode x
    combining-tree fanout over the self-verifying allreduce workload, run
    to completion under the invariant monitor."""
    traffic = traffic or allreduce(AllReduceConfig())
    specs = []
    for mode in barrier_modes:
        for fanout in fanouts:
            specs.append(
                ExperimentSpec(
                    network=network,
                    traffic=traffic,
                    num_nodes=num_nodes,
                    collective_params=CollectiveParams(
                        barrier=mode, fanout=fanout,
                    ),
                    max_cycles=max_cycles,
                    seed=seed,
                    observe=Observability(validate=True, events=True)
                    if validate else None,
                    label=f"barrier={mode} k={fanout}",
                )
            )
    return specs


def sweep_collective_barrier(
    network: str = "fattree",
    *,
    barrier_modes: Sequence[str] = ("host", "nic"),
    fanouts: Sequence[int] = (4,),
    traffic=None,
    num_nodes: int = 16,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[SweepPoint]:
    """Run the host-vs-NIC barrier grid; points come back in spec order
    (mode-major), each carrying the barrier-latency histogram in its
    metrics JSON."""
    specs = collective_barrier_specs(
        network, barrier_modes=barrier_modes, fanouts=fanouts,
        traffic=traffic, num_nodes=num_nodes, seed=seed,
    )
    return _engine_or_default(engine).run(specs)


# ----------------------------------------------------------------- Figure 4
def machine_size_specs(
    network: str,
    sizes: Sequence[int],
    params: NifdyParams,
    *,
    baseline_mode: str = "plain",
    run_cycles: int = 10_000,
    seed: int = 0,
    traffic=None,
) -> List[ExperimentSpec]:
    """The Figure-4 scalability grid as specs: per size, one baseline run
    then one NIFDY run (flat, in that order)."""
    traffic = traffic or heavy_synthetic(
        SyntheticConfig.heavy_traffic(fixed_message_length=1)
    )
    specs = []
    for size in sizes:
        for mode, nifdy in ((baseline_mode, None), ("nifdy-", params)):
            specs.append(
                ExperimentSpec(
                    network=network,
                    traffic=traffic,
                    num_nodes=size,
                    nic_mode=mode,
                    nifdy_params=nifdy,
                    run_cycles=run_cycles,
                    seed=seed,
                    label=f"n={size} {mode}",
                )
            )
    return specs


def sweep_machine_sizes(
    network: str,
    sizes: Sequence[int],
    params: NifdyParams,
    *,
    baseline_mode: str = "plain",
    run_cycles: int = 10_000,
    seed: int = 0,
    traffic=None,
    engine: Optional[SweepEngine] = None,
) -> Dict[int, Tuple[int, int, float]]:
    """(nifdy delivered, baseline delivered, normalized) per machine size --
    the Figure 4 scalability methodology."""
    specs = machine_size_specs(
        network, sizes, params, baseline_mode=baseline_mode,
        run_cycles=run_cycles, seed=seed, traffic=traffic,
    )
    results = _engine_or_default(engine).run(specs)
    out = {}
    for i, size in enumerate(sizes):
        base = results[2 * i].delivered
        with_nifdy = results[2 * i + 1].delivered
        out[size] = (with_nifdy, base, with_nifdy / base if base else 0.0)
    return out
