"""Parameter- and load-sweep helpers.

The paper's methodology is sweeps: NIFDY parameters per network (Table 3),
buffer/OPT sizes across machine sizes (Figure 4), offered load across the
operating range (Section 1).  These helpers run such sweeps through
:func:`run_experiment` and return structured results the benches (and
users) can rank or plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..nic import NifdyParams
from ..traffic import SyntheticConfig
from .runner import run_experiment
from .workloads import heavy_synthetic, light_synthetic


@dataclass
class SweepPoint:
    """One configuration's outcome in a sweep."""

    label: str
    params: Optional[NifdyParams]
    delivered: int
    cycles: int

    @property
    def throughput(self) -> float:
        return 1000.0 * self.delivered / self.cycles if self.cycles else 0.0


def sweep_nifdy_params(
    network: str,
    grid: Iterable[NifdyParams],
    *,
    num_nodes: int = 64,
    run_cycles: int = 10_000,
    seed: int = 0,
    combine_light_and_heavy: bool = True,
) -> List[SweepPoint]:
    """Score NIFDY parameter sets on a network (Table 3 methodology:
    "chosen to give the best average performance with both test traffic
    patterns").  Returns points sorted best-first."""
    points = []
    for params in grid:
        total = 0
        traffics = [heavy_synthetic()]
        if combine_light_and_heavy:
            traffics.append(light_synthetic())
        for traffic in traffics:
            total += run_experiment(
                network, traffic, num_nodes=num_nodes, nic_mode="nifdy-",
                nifdy_params=params, run_cycles=run_cycles, seed=seed,
            ).delivered
        label = (
            f"O={params.opt_size} B={params.pool_size} "
            f"D={params.dialogs} W={params.window}"
        )
        points.append(SweepPoint(label, params, total, run_cycles))
    points.sort(key=lambda point: point.delivered, reverse=True)
    return points


def default_param_grid(
    opt_sizes: Sequence[int] = (2, 4, 8),
    windows: Sequence[int] = (0, 2, 8),
    pool_size: int = 8,
) -> List[NifdyParams]:
    """The (O, W) grid the Table 3 bench sweeps (W=0 disables bulk)."""
    grid = []
    for opt in opt_sizes:
        for window in windows:
            dialogs = 1 if window else 0
            grid.append(
                NifdyParams(
                    opt_size=opt, pool_size=pool_size,
                    dialogs=dialogs, window=window,
                )
            )
    return grid


def sweep_offered_load(
    network: str,
    gaps: Sequence[int],
    *,
    nic_mode: str = "plain",
    num_nodes: int = 64,
    run_cycles: int = 20_000,
    seed: int = 0,
    nifdy_params: Optional[NifdyParams] = None,
) -> List[SweepPoint]:
    """Delivered throughput vs offered load (larger gap = lighter load):
    the Section 1 operating-range curve."""
    points = []
    for gap in gaps:
        cfg = SyntheticConfig.heavy_traffic(send_gap_cycles=gap)
        result = run_experiment(
            network, heavy_synthetic(cfg), num_nodes=num_nodes,
            nic_mode=nic_mode, nifdy_params=nifdy_params,
            run_cycles=run_cycles, seed=seed,
        )
        points.append(SweepPoint(f"gap={gap}", nifdy_params,
                                 result.delivered, result.cycles))
    return points


def sweep_machine_sizes(
    network: str,
    sizes: Sequence[int],
    params: NifdyParams,
    *,
    baseline_mode: str = "plain",
    run_cycles: int = 10_000,
    seed: int = 0,
    traffic=None,
) -> Dict[int, Tuple[int, int, float]]:
    """(nifdy delivered, baseline delivered, normalized) per machine size --
    the Figure 4 scalability methodology."""
    traffic = traffic or heavy_synthetic(
        SyntheticConfig.heavy_traffic(fixed_message_length=1)
    )
    out = {}
    for size in sizes:
        base = run_experiment(
            network, traffic, num_nodes=size, nic_mode=baseline_mode,
            run_cycles=run_cycles, seed=seed,
        ).delivered
        with_nifdy = run_experiment(
            network, traffic, num_nodes=size, nic_mode="nifdy-",
            nifdy_params=params, run_cycles=run_cycles, seed=seed,
        ).delivered
        out[size] = (with_nifdy, base, with_nifdy / base if base else 0.0)
    return out
