"""``ExperimentSpec``: one experiment as immutable, hashable data.

Everything :func:`repro.experiments.run_experiment` needs to reproduce a
run -- network, traffic (by registry name + config so it pickles), NIC
mode and parameters, horizon, seed, fault plan, observability toggles --
captured in a frozen dataclass with a stable content hash.  The spec is
the unit of work the :class:`~repro.experiments.engine.SweepEngine`
distributes across processes and the key its on-disk result cache uses.

Identity is :meth:`content_hash` (a SHA-256 over the canonical JSON form),
NOT Python's ``hash()``: the hash is independent of ``PYTHONHASHSEED``,
stable across processes and interpreter versions, and excludes the
cosmetic ``label`` so two specs differing only in display label share
cache entries.

A spec may also carry a raw callable as ``traffic`` (any
``(node, num_nodes, rng_factory, exploit) -> driver``); such a spec still
runs in-process but is *not portable* -- it cannot be serialised, hashed,
cached, or shipped to a worker process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..faults import FaultPlan
from ..nic import CollectiveParams, NifdyParams, ReorderParams
from ..node import CM5_TIMING, Timing
from ..obs import Observability
from ..sim import scheduler_names
from ..traffic import TrafficSpec


class SpecSerializationError(TypeError):
    """The spec holds something (an opaque traffic callable) that cannot be
    expressed as data; it can still run in-process, but not be cached or
    dispatched to workers."""


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, immutable description of one experiment run.

    ``run_cycles`` set: fixed measurement horizon (the Figure 2/3
    throughput methodology).  Unset: run to workload completion bounded by
    ``max_cycles``.  ``label`` is cosmetic (sweep tables); it is excluded
    from :meth:`content_hash`.
    """

    network: str
    traffic: object  # TrafficSpec (portable) or a raw TrafficFactory
    num_nodes: int = 64
    active_nodes: Optional[int] = None
    nic_mode: str = "nifdy"
    nifdy_params: Optional[NifdyParams] = None
    #: Parameters for the ``reorder-*`` NIC modes (bounded reorder window,
    #: Eunomia bitmap, Jain drop-vs-cache); ignored by the other modes.
    reorder_params: Optional[ReorderParams] = None
    #: Collective subsystem: ``barrier="nic"`` offloads barriers/reductions
    #: onto the NIC combining tree; ``None`` (or ``barrier="host"``) keeps
    #: the host-side combine.
    collective_params: Optional[CollectiveParams] = None
    run_cycles: Optional[int] = None
    max_cycles: int = 5_000_000
    seed: int = 0
    #: Event-queue implementation ("bucket" fast path or the "heap"
    #: baseline).  Results are bit-identical by construction -- the
    #: scheduler parity suite enforces it -- but the choice is still part
    #: of the spec (and its hash) so a parity regression can never alias
    #: cache entries across kernels.
    kernel: str = "bucket"
    timing: Optional[Timing] = None  # None -> CM5_TIMING
    check_order: bool = True
    track_congestion: bool = False
    congestion_sample_every: int = 1000
    drop_prob: float = 0.0
    retx_timeout: int = 1000
    on_exhaust: str = "abandon"
    max_retries: int = 50
    fault_plan: Optional[FaultPlan] = None
    watchdog_cycles: int = 200_000
    network_overrides: Optional[Dict] = None
    observe: Optional[Observability] = field(default=None, compare=False)
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.network, str) or not self.network:
            raise ValueError("spec needs a network name")
        if self.traffic is None or not callable(self.traffic):
            raise TypeError(
                "spec.traffic must be a TrafficSpec or a traffic factory"
            )
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if self.kernel not in scheduler_names():
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from "
                f"{scheduler_names()}"
            )

    # ------------------------------------------------------------ ergonomics
    @property
    def portable(self) -> bool:
        """Whether the spec is pure data (cacheable / worker-dispatchable)."""
        return isinstance(self.traffic, TrafficSpec)

    @property
    def resolved_timing(self) -> Timing:
        return self.timing if self.timing is not None else CM5_TIMING

    def replace(self, **changes) -> "ExperimentSpec":
        """A copy with fields changed (specs are frozen)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        traffic = (
            self.traffic.name if self.portable
            else getattr(self.traffic, "__name__", "<factory>")
        )
        horizon = (
            f"{self.run_cycles} cycles" if self.run_cycles is not None
            else "to completion"
        )
        return (
            f"{self.network}/{traffic}/{self.nic_mode} "
            f"n={self.num_nodes} seed={self.seed} ({horizon})"
        )

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> Dict:
        """Canonical JSON-able form (raises :class:`SpecSerializationError`
        for non-portable specs)."""
        if not self.portable:
            raise SpecSerializationError(
                "spec.traffic is an opaque callable; register it "
                "(repro.traffic.register_traffic) and use a TrafficSpec "
                "to make the spec serialisable"
            )
        return {
            "network": self.network,
            "traffic": self.traffic.to_dict(),
            "num_nodes": self.num_nodes,
            "active_nodes": self.active_nodes,
            "nic_mode": self.nic_mode,
            "nifdy_params": None if self.nifdy_params is None
            else dataclasses.asdict(self.nifdy_params),
            "reorder_params": None if self.reorder_params is None
            else dataclasses.asdict(self.reorder_params),
            "collective_params": None if self.collective_params is None
            else dataclasses.asdict(self.collective_params),
            "run_cycles": self.run_cycles,
            "max_cycles": self.max_cycles,
            "seed": self.seed,
            "kernel": self.kernel,
            "timing": None if self.timing is None
            else dataclasses.asdict(self.timing),
            "check_order": self.check_order,
            "track_congestion": self.track_congestion,
            "congestion_sample_every": self.congestion_sample_every,
            "drop_prob": self.drop_prob,
            "retx_timeout": self.retx_timeout,
            "on_exhaust": self.on_exhaust,
            "max_retries": self.max_retries,
            "fault_plan": None if self.fault_plan is None
            else self.fault_plan.to_dict(),
            "watchdog_cycles": self.watchdog_cycles,
            "network_overrides": None if self.network_overrides is None
            else dict(self.network_overrides),
            "observe": None if self.observe is None else {
                "events": self.observe.events,
                "keep_events": self.observe.keep_events,
                "sample_interval": self.observe.sample_interval,
                "trace": self.observe.trace,
                "trace_max_packets": self.observe.trace_max_packets,
                "profile": self.observe.profile,
                "validate": self.observe.validate,
                "validate_strict": self.observe.validate_strict,
            },
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentSpec":
        kwargs = dict(data)
        kwargs["traffic"] = TrafficSpec.from_dict(kwargs["traffic"])
        if kwargs.get("nifdy_params") is not None:
            kwargs["nifdy_params"] = NifdyParams(**kwargs["nifdy_params"])
        if kwargs.get("reorder_params") is not None:
            kwargs["reorder_params"] = ReorderParams(**kwargs["reorder_params"])
        if kwargs.get("collective_params") is not None:
            kwargs["collective_params"] = CollectiveParams(
                **kwargs["collective_params"]
            )
        if kwargs.get("timing") is not None:
            kwargs["timing"] = Timing(**kwargs["timing"])
        if kwargs.get("fault_plan") is not None:
            kwargs["fault_plan"] = FaultPlan.from_dict(kwargs["fault_plan"])
        if kwargs.get("observe") is not None:
            kwargs["observe"] = Observability(**kwargs["observe"])
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Stable identity: SHA-256 of the canonical dict, minus the
        cosmetic ``label`` and the ``observe`` toggles (instrumentation
        watches a run, it does not change its results)."""
        payload = self.to_dict()
        payload.pop("label", None)
        payload.pop("observe", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
