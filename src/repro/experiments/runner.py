"""One-call experiment runner: network + NICs + processors + workload.

This is the API the benchmarks (and examples) use.  A *traffic factory*
builds one driver per node; the runner assembles everything, runs either
for a fixed horizon (the synthetic throughput experiments) or to workload
completion (C-shift, EM3D, radix sort), and returns an
:class:`ExperimentResult`.

NIC modes (matching the bars of Figures 2/3 and 6-9):

=============  ============================================================
``plain``      bare network interface, backpressure-only flow control
``buffered``   NIFDY's buffer budget, no protocol ("buffers only")
``nifdy-``     the NIFDY protocol, software NOT exploiting in-order delivery
``nifdy``      protocol + in-order-aware communication library
=============  ============================================================

On topologies that deliver in order by construction (2D mesh with one VC,
butterfly) the in-order-aware library is used for every mode, exactly as
the paper does.

Fault injection: pass a :class:`~repro.faults.FaultPlan` and the runner
attaches a :class:`~repro.faults.FaultInjector`, switches the NIFDY modes to
the retransmitting variant, and arms a liveness watchdog -- a run that goes
quiescent while packets are still owed is stopped and diagnosed (which
node/dialog is stuck) instead of silently burning its ``max_cycles``.
Retry exhaustion degrades gracefully in experiment runs: the NIC abandons
the packet, the metrics record it, and the sender's driver is notified.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..faults import FaultInjector, FaultPlan
from ..metrics import CongestionTracker, MetricsCollector, PacketTracer
from ..networks import build_network
from ..obs import EventBus, Observability, StateSampler
from ..nic import (
    REORDER_NIC_MODES,
    BufferedNIC,
    CollectiveEngine,
    CollectiveTree,
    HostCollective,
    NifdyNIC,
    NifdyParams,
    PlainNIC,
    ReorderParams,
    ReorderTolerantNIC,
    RetransmittingNifdyNIC,
)
from ..node import CM5_TIMING, Processor, Timing, TrafficDriver
from ..sim import Barrier, RngFactory, Simulator
from .configs import best_params
from .spec import ExperimentSpec

NIC_MODES = (
    "plain", "buffered", "nifdy", "nifdy-",
    # Reorder-tolerant receivers (the multipath scenario pack): same windowed
    # sender, three receiver recovery policies.
    "reorder-window", "reorder-bitmap", "reorder-jain",
)

#: A traffic factory: (node_id, num_nodes, rng_factory, exploit_inorder) -> driver.
TrafficFactory = Callable[[int, int, RngFactory, bool], TrafficDriver]


class IdleDriver(TrafficDriver):
    """Driver for unpopulated nodes: no work, but the processor still polls
    (used when a workload runs on a subset of a larger fabric, like the
    paper's 32-node C-shift on the CM-5 fat tree)."""

    def next_action(self):
        from ..node import Done

        return Done()

    def on_packet(self, packet):
        raise RuntimeError("idle node received a data packet")


@dataclass
class ExperimentResult:
    """What one simulation run produced."""

    network: str
    nic_mode: str
    num_nodes: int
    cycles: int
    sent: int
    delivered: int
    completed: bool
    order_violations: int
    mean_network_latency: float
    mean_total_latency: float
    abandoned: int = 0
    stall_report: Optional[str] = None
    #: Protocol-invariant breaches (as dicts) found by the
    #: :class:`~repro.validate.InvariantMonitor` when
    #: ``observe.validate`` was on; empty otherwise.
    violations: List[Dict] = field(default_factory=list)
    drivers: List[TrafficDriver] = field(repr=False, default_factory=list)
    processors: List[Processor] = field(repr=False, default_factory=list)
    nics: List = field(repr=False, default_factory=list)
    network_obj: Optional[object] = field(repr=False, default=None)
    congestion: Optional[CongestionTracker] = field(repr=False, default=None)
    metrics: Optional[MetricsCollector] = field(repr=False, default=None)
    fault_injector: Optional[FaultInjector] = field(repr=False, default=None)
    obs: Optional[Observability] = field(repr=False, default=None)

    @property
    def throughput(self) -> float:
        """Packets delivered per 1000 cycles (the Figures 2/3 metric,
        rescaled from the paper's per-1M-cycles window)."""
        return 1000.0 * self.delivered / self.cycles if self.cycles else 0.0

    def run_stats(self):
        """This result as a schema :class:`~repro.report.schema.RunStats`:
        the slim, JSON-ready shape shared by the sweep cache, the
        ``--json`` CLI outputs, and ``repro report`` (no live simulator
        objects)."""
        from ..report.schema import RunStats  # deferred: keep import light

        return RunStats.from_result(self)

    def latency_percentiles(self) -> Dict[str, int]:
        """p50/p90/p99/max of both latency histograms (zeros if the
        collector was discarded)."""
        out: Dict[str, int] = {}
        for name in ("network", "total"):
            hist = getattr(self.metrics, f"{name}_latency", None)
            for p in ("p50", "p90", "p99"):
                out[f"{name}_{p}"] = getattr(hist, p, 0)
            out[f"{name}_max"] = getattr(hist, "maximum", 0)
        return out


def make_nic_factory(
    sim: Simulator,
    nic_mode: str,
    params: NifdyParams,
    lossy: bool = False,
    retx_timeout: int = 1000,
    on_exhaust: str = "abandon",
    max_retries: int = 50,
    reorder_params: Optional[ReorderParams] = None,
) -> Callable[[int], object]:
    """NIC constructor for ``nic_mode`` (see module docstring)."""
    if nic_mode == "plain":
        return lambda node: PlainNIC(sim, node)
    if nic_mode == "buffered":
        total = params.total_buffers
        return lambda node: BufferedNIC(sim, node, total_buffers=total)
    if nic_mode in ("nifdy", "nifdy-"):
        if lossy:
            return lambda node: RetransmittingNifdyNIC(
                sim, node, params, retx_timeout=retx_timeout,
                on_exhaust=on_exhaust, max_retries=max_retries,
            )
        return lambda node: NifdyNIC(sim, node, params)
    if nic_mode in REORDER_NIC_MODES:
        policy = REORDER_NIC_MODES[nic_mode]
        return lambda node: ReorderTolerantNIC(
            sim, node, policy=policy, params=reorder_params,
            retx_timeout=retx_timeout, on_exhaust=on_exhaust,
            max_retries=max_retries,
        )
    raise ValueError(f"unknown NIC mode {nic_mode!r}; choose from {NIC_MODES}")


def describe_stall(nics, processors, metrics) -> str:
    """Explain a quiescent-but-incomplete run: which node, which packet,
    which dialog.  This is the liveness watchdog's post-mortem."""
    lines = [
        f"stalled with {metrics.in_flight} packet(s) owed "
        f"(sent={metrics.sent}, delivered={metrics.delivered}, "
        f"abandoned={metrics.abandoned})"
    ]
    for node, (nic, proc) in enumerate(zip(nics, processors)):
        issues = []
        if not proc.done:
            issues.append("driver not done")
        if getattr(proc, "_paused", False):
            issues.append("processor paused")
        hold = getattr(nic, "_hold", None)
        if hold:
            for key, held in list(hold.items())[:4]:
                packet, _, tries = held[0], held[1], held[2]
                if key[0] == "s":
                    what = f"scalar to {packet.dst}"
                elif key[0] == "r":
                    what = f"stream seq {key[2]} to {packet.dst}"
                else:
                    what = f"bulk dialog {key[2]} seq {key[3]} to {packet.dst}"
                issues.append(f"retransmitting {what} ({tries} tries so far)")
        outstanding = getattr(nic, "opt", None)
        if outstanding is not None and len(outstanding):
            issues.append(
                "unacked scalar destinations: "
                + ", ".join(str(d) for d in sorted(outstanding))
            )
        dialogs = getattr(nic, "_rx_dialogs", None)
        if dialogs:
            for dialog in dialogs.values():
                issues.append(
                    f"rx dialog #{dialog.dialog} from {dialog.src} waiting for "
                    f"seq {dialog.next_deliver_seq} "
                    f"({len(dialog.buffers)} buffered)"
                )
        pool = getattr(nic, "pool", None)
        if pool is not None and len(pool):
            issues.append(f"{len(pool)} packet(s) queued in the pool")
        if issues:
            lines.append(f"  node {node}: " + "; ".join(issues))
    if len(lines) == 1:
        lines.append("  (no per-node protocol state pending; likely a driver "
                     "waiting on traffic that was lost or abandoned)")
    return "\n".join(lines)


#: Legacy keyword arguments accepted by the deprecation shim: every
#: :class:`ExperimentSpec` field except the two positional ones and the
#: cosmetic label.
_LEGACY_KWARGS = frozenset(
    f.name for f in ExperimentSpec.__dataclass_fields__.values()
) - {"network", "traffic", "label"}


def run_experiment(spec, traffic=None, **legacy_kwargs) -> ExperimentResult:
    """Run one experiment described by an :class:`ExperimentSpec`.

    The canonical form is ``run_experiment(spec)``.  The pre-spec form
    ``run_experiment(network, traffic_factory, **kwargs)`` is still
    accepted but deprecated: it emits a single :class:`DeprecationWarning`
    and forwards to the spec path.

    ``spec.run_cycles`` set: run exactly that horizon and report
    throughput (Figures 2/3).  Unset: run until every driver is done and
    all sent packets are delivered (C-shift/EM3D/radix), bounded by
    ``max_cycles``.

    ``active_nodes`` runs the workload on only the first N nodes of a
    larger fabric (a partially-populated machine, like the paper's 32-node
    CM-5 runs); the remaining nodes idle but stay responsive.

    ``fault_plan`` injects structured faults (see :mod:`repro.faults`); the
    NIFDY modes then use the retransmitting NIC.  ``watchdog_cycles`` is
    the liveness horizon for run-to-completion workloads: a run with no
    packet movement for that long while work is still owed is declared
    stalled (``result.stall_report`` says what is stuck) rather than
    simulated to ``max_cycles``.  Set to 0 to disable.

    ``observe`` (an :class:`~repro.obs.Observability`) turns on the
    instrumentation layer: the protocol event bus, periodic state sampling,
    per-packet lifecycle tracing (for Chrome-trace export), and kernel
    self-profiling.  The same object comes back as ``result.obs`` with its
    live handles (``bus``/``sampler``/``tracer``/``kernel_profile``)
    filled in for the exporters.
    """
    if isinstance(spec, ExperimentSpec):
        if traffic is not None or legacy_kwargs:
            raise TypeError(
                "run_experiment(spec) takes no further arguments; put "
                "everything in the ExperimentSpec"
            )
        return _run_spec(spec)
    if traffic is None:
        raise TypeError(
            "run_experiment takes an ExperimentSpec, or (legacy) a network "
            "name plus a traffic factory"
        )
    unknown = set(legacy_kwargs) - _LEGACY_KWARGS
    if unknown:
        raise TypeError(f"unknown run_experiment argument(s): {sorted(unknown)}")
    warnings.warn(
        "run_experiment(network, traffic, **kwargs) is deprecated; build an "
        "ExperimentSpec and call run_experiment(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_spec(
        ExperimentSpec(network=spec, traffic=traffic, **legacy_kwargs)
    )


def _run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Assemble and simulate one spec (the engine's per-point work unit)."""
    network = spec.network
    num_nodes = spec.num_nodes
    nic_mode = spec.nic_mode
    run_cycles = spec.run_cycles
    max_cycles = spec.max_cycles
    fault_plan = spec.fault_plan
    watchdog_cycles = spec.watchdog_cycles
    timing = spec.resolved_timing
    observe = spec.observe
    traffic = spec.traffic

    sim = Simulator(scheduler=spec.kernel)
    rngf = RngFactory(spec.seed)
    net = build_network(
        network,
        sim,
        num_nodes,
        rng=rngf.stream("route"),
        drop_prob=spec.drop_prob,
        drop_rng=rngf.stream("drop"),
        **(spec.network_overrides or {}),
    )
    params = spec.nifdy_params or best_params(network)
    lossy = spec.drop_prob > 0.0 or fault_plan is not None
    nic_factory = make_nic_factory(
        sim, nic_mode, params, lossy=lossy, retx_timeout=spec.retx_timeout,
        on_exhaust=spec.on_exhaust, max_retries=spec.max_retries,
        reorder_params=spec.reorder_params,
    )
    nics = net.attach_nics(nic_factory)
    # Reorder-tolerant receivers restore per-sender order, so software gets
    # the in-order-aware library just like the NIFDY mode does.
    exploit = (
        net.delivers_in_order
        or nic_mode == "nifdy"
        or nic_mode in REORDER_NIC_MODES
    )
    active = spec.active_nodes if spec.active_nodes is not None else num_nodes
    if not 0 < active <= num_nodes:
        raise ValueError("active_nodes must be in 1..num_nodes")
    barrier = Barrier(sim, active, release_cost=timing.barrier_cost)
    coll_params = spec.collective_params
    if coll_params is not None and coll_params.barrier == "nic":
        # Offloaded: each active NIC gets a combining-tree engine; barriers
        # and reductions become protocol traffic instead of a host combine.
        tree = CollectiveTree(range(active), coll_params.fanout)
        for node in range(active):
            nics[node].collective = CollectiveEngine(
                sim, nics[node], tree, coll_params, lossy=lossy,
            )
    # The host-side reduction combine (used by AllReduce when not offloaded;
    # WaitBarrier keeps using the plain Barrier for bit-stable history).
    host_coll = HostCollective(
        sim, active, release_cost=timing.barrier_cost,
        op=coll_params.op if coll_params is not None else "sum",
    )
    drivers = [
        traffic(node, active, rngf, exploit) if node < active else IdleDriver()
        for node in range(num_nodes)
    ]
    processors = [
        Processor(
            sim,
            node,
            nics[node],
            drivers[node],
            timing,
            barrier=barrier,
            network_in_order=net.delivers_in_order,
            exploit_inorder=exploit,
            host_collective=host_coll if node < active else None,
        )
        for node in range(num_nodes)
    ]
    metrics = MetricsCollector(
        num_nodes,
        check_order=spec.check_order,
        record_delivery_cycles=fault_plan is not None,
    )
    metrics.attach(nics, processors)
    # Abandonment must reach two parties: the metrics (so the run can
    # terminate and report the loss) and the sender's driver (so workloads
    # tracking expected traffic don't wait forever).
    for node, nic in enumerate(nics):
        def _abandon(packet, _driver=drivers[node]):
            metrics.note_abandon(packet)
            _driver.on_abandoned(packet)
        nic.on_abandon = _abandon
    injector = None
    if fault_plan is not None and fault_plan:
        injector = FaultInjector(
            sim, net, fault_plan, processors=processors,
            rng=rngf.stream("faults"),
        )
        injector.start()
    if observe is not None and observe.enabled:
        if observe.profile:
            observe.kernel_profile = sim.enable_profiling()
        if observe.events or observe.validate:
            observe.bus = EventBus(keep_events=observe.keep_events)
            observe.bus.attach(nics, net.links, net.routers, injector)
        if observe.validate:
            # Deferred import: repro.validate sits above the experiments
            # layer (its chaos engine drives the SweepEngine).
            from ..validate.invariants import InvariantMonitor

            # Order is gated per receiver (the monitor duck-types each
            # node's NIC), so mixed guarantees on a reordering fabric are
            # checked exactly where they hold.
            observe.monitor = InvariantMonitor(
                check_order=spec.check_order,
                fabric_in_order=net.delivers_in_order,
                strict=observe.validate_strict,
            ).attach(observe.bus, nics)
        if observe.trace:
            # Attach AFTER the collector and the abandon rewiring so the
            # tracer chains (not replaces) the accounting hooks.
            observe.tracer = PacketTracer(max_packets=observe.trace_max_packets)
            observe.tracer.attach(nics)
        if observe.sample_interval:
            observe.sampler = StateSampler(
                sim, nics, net.links, collector=metrics,
                interval=observe.sample_interval,
            )
            observe.sampler.start()
    tracker = None
    if spec.track_congestion:
        tracker = CongestionTracker(sim, metrics, spec.congestion_sample_every)
        tracker.start()
    for proc in processors:
        proc.start()

    completed = True
    stall_report = None
    if run_cycles is not None:
        sim.run_until(run_cycles)
    else:
        chunk = 1000
        last_signature = None
        last_progress = sim.now
        while True:
            sim.run_until(sim.now + chunk)
            if all(p.done for p in processors) and metrics.in_flight == 0:
                break
            if sim.now >= max_cycles:
                completed = False
                break
            if watchdog_cycles:
                # Liveness: "progress" is any packet movement anywhere --
                # flits on wires catch in-network crawl, deliveries and
                # abandonments catch end-point progress.
                signature = (
                    metrics.delivered,
                    metrics.abandoned,
                    sum(link.flits_carried for link in net.links),
                )
                if signature != last_signature:
                    last_signature = signature
                    last_progress = sim.now
                elif sim.now - last_progress >= watchdog_cycles:
                    completed = False
                    stall_report = describe_stall(nics, processors, metrics)
                    break
    if tracker is not None:
        tracker.stop()
    if observe is not None and observe.sampler is not None:
        observe.sampler.stop()
    violations: List[Dict] = []
    if observe is not None and observe.monitor is not None:
        # The no-silent-loss check only makes sense for a completed
        # run-to-completion workload: fixed-horizon and stalled/truncated
        # runs legitimately end with packets in flight.
        observe.monitor.finish(
            check_loss=completed and run_cycles is None, cycle=sim.now,
        )
        violations = [v.to_dict() for v in observe.monitor.violations]

    return ExperimentResult(
        network=net.name,
        nic_mode=nic_mode,
        num_nodes=num_nodes,
        cycles=sim.now,
        sent=metrics.sent,
        delivered=metrics.delivered,
        completed=completed,
        order_violations=metrics.order_violations,
        mean_network_latency=metrics.network_latency.mean,
        mean_total_latency=metrics.total_latency.mean,
        abandoned=metrics.abandoned,
        stall_report=stall_report,
        violations=violations,
        drivers=drivers,
        processors=processors,
        nics=nics,
        network_obj=net,
        congestion=tracker,
        metrics=metrics,
        fault_injector=injector,
        obs=observe,
    )
