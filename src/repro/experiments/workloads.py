"""Ready-made traffic specs for the paper's workloads.

Each helper returns a :class:`~repro.traffic.TrafficSpec`: still callable
with the classic factory signature ``(node, num_nodes, rng_factory,
exploit_inorder)``, but also plain data -- it pickles across processes,
serialises into :class:`~repro.experiments.spec.ExperimentSpec` JSON, and
hashes stably for the sweep engine's result cache.
"""

from __future__ import annotations

from typing import Optional

from ..traffic import (
    AllReduceConfig,
    CShiftConfig,
    Em3dConfig,
    HotSpotConfig,
    IncastConfig,
    RadixSortConfig,
    RpcFanoutConfig,
    SyntheticConfig,
    TrafficSpec,
)


def heavy_synthetic(config: Optional[SyntheticConfig] = None) -> TrafficSpec:
    """Section 4.1 heavy traffic: all nodes send, lengths U[1,5]."""
    return TrafficSpec("heavy", config)


def light_synthetic(config: Optional[SyntheticConfig] = None) -> TrafficSpec:
    """Section 4.1 light traffic: 1/3 senders, long-message tail,
    non-responsive periods."""
    return TrafficSpec("light", config)


def cshift(config: Optional[CShiftConfig] = None) -> TrafficSpec:
    """Section 4.3 cyclic shift (all-to-all)."""
    return TrafficSpec("cshift", config)


def em3d(config: Optional[Em3dConfig] = None) -> TrafficSpec:
    """Section 4.4 EM3D (light- or heavy-communication parameterisation)."""
    return TrafficSpec("em3d", config)


def radix_sort(config: Optional[RadixSortConfig] = None) -> TrafficSpec:
    """Section 4.5 radix sort (scan and optional coalesce phases)."""
    return TrafficSpec("radix", config)


def hotspot(config: Optional[HotSpotConfig] = None) -> TrafficSpec:
    """Hot-spot traffic (Section 1 / Section 5's dynamic bandwidth matching)."""
    return TrafficSpec("hotspot", config)


def incast(config: Optional[IncastConfig] = None) -> TrafficSpec:
    """Synchronised many-to-one bursts (the datacenter incast pattern)."""
    return TrafficSpec("incast", config)


def rpc_fanout(config: Optional[RpcFanoutConfig] = None) -> TrafficSpec:
    """Partition-aggregate RPC: scatter requests, gather the reply burst."""
    return TrafficSpec("rpc", config)


def allreduce(config: Optional[AllReduceConfig] = None) -> TrafficSpec:
    """Self-verifying allreduce rounds with background traffic (the
    NIC-offloaded collective benchmark workload)."""
    return TrafficSpec("allreduce", config)


def perf_reference_spec(
    network: str = "fattree",
    num_nodes: int = 64,
    run_cycles: int = 20_000,
    seed: int = 11,
    kernel: str = "bucket",
    observe: Optional["Observability"] = None,
) -> "ExperimentSpec":
    """The fixed-seed workload ``repro perf`` and the kernel benchmark run.

    Heavy synthetic traffic on a fat tree under the NIFDY NIC -- the
    densest event mix the simulator produces (every node sending, acks
    piggybacking, links saturated) -- so its events-per-second figure is a
    fair proxy for kernel overhead.  Keep the defaults stable: recorded
    ``BENCH_summary.json`` numbers are only comparable across commits if
    the workload never moves.
    """
    from ..obs import Observability
    from .spec import ExperimentSpec

    if observe is None:
        observe = Observability(profile=True, events=True)
    return ExperimentSpec(
        network=network,
        traffic=heavy_synthetic(),
        num_nodes=num_nodes,
        run_cycles=run_cycles,
        seed=seed,
        kernel=kernel,
        observe=observe,
        label=f"perf-ref/{kernel}",
    )
