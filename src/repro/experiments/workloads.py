"""Ready-made traffic factories for the paper's workloads."""

from __future__ import annotations

from typing import Optional

from ..sim import RngFactory
from ..traffic import (
    CShiftConfig,
    CShiftDriver,
    Em3dConfig,
    Em3dDriver,
    HotSpotConfig,
    HotSpotDriver,
    RadixSortConfig,
    RadixSortDriver,
    SyntheticConfig,
    SyntheticDriver,
)
from .runner import TrafficFactory


def heavy_synthetic(config: Optional[SyntheticConfig] = None) -> TrafficFactory:
    """Section 4.1 heavy traffic: all nodes send, lengths U[1,5]."""
    cfg = config or SyntheticConfig.heavy_traffic()

    def factory(node, num_nodes, rngf: RngFactory, exploit):
        return SyntheticDriver(node, num_nodes, cfg, rngf, exploit)

    return factory


def light_synthetic(config: Optional[SyntheticConfig] = None) -> TrafficFactory:
    """Section 4.1 light traffic: 1/3 senders, long-message tail,
    non-responsive periods."""
    cfg = config or SyntheticConfig.light_traffic()

    def factory(node, num_nodes, rngf: RngFactory, exploit):
        return SyntheticDriver(node, num_nodes, cfg, rngf, exploit)

    return factory


def cshift(config: Optional[CShiftConfig] = None) -> TrafficFactory:
    """Section 4.3 cyclic shift (all-to-all)."""
    cfg = config or CShiftConfig()

    def factory(node, num_nodes, rngf: RngFactory, exploit):
        return CShiftDriver(node, num_nodes, cfg, exploit)

    return factory


def em3d(config: Optional[Em3dConfig] = None) -> TrafficFactory:
    """Section 4.4 EM3D (light- or heavy-communication parameterisation)."""
    cfg = config or Em3dConfig.light_communication()

    def factory(node, num_nodes, rngf: RngFactory, exploit):
        return Em3dDriver(node, num_nodes, cfg, rngf, exploit)

    return factory


def radix_sort(config: Optional[RadixSortConfig] = None) -> TrafficFactory:
    """Section 4.5 radix sort (scan and optional coalesce phases)."""
    cfg = config or RadixSortConfig()

    def factory(node, num_nodes, rngf: RngFactory, exploit):
        return RadixSortDriver(node, num_nodes, cfg, rngf, exploit)

    return factory


def hotspot(config: Optional[HotSpotConfig] = None) -> TrafficFactory:
    """Hot-spot traffic (Section 1 / Section 5's dynamic bandwidth matching)."""
    cfg = config or HotSpotConfig()

    def factory(node, num_nodes, rngf: RngFactory, exploit):
        return HotSpotDriver(node, num_nodes, cfg, rngf, exploit)

    return factory
