"""Ready-made traffic specs for the paper's workloads.

Each helper returns a :class:`~repro.traffic.TrafficSpec`: still callable
with the classic factory signature ``(node, num_nodes, rng_factory,
exploit_inorder)``, but also plain data -- it pickles across processes,
serialises into :class:`~repro.experiments.spec.ExperimentSpec` JSON, and
hashes stably for the sweep engine's result cache.
"""

from __future__ import annotations

from typing import Optional

from ..traffic import (
    CShiftConfig,
    Em3dConfig,
    HotSpotConfig,
    RadixSortConfig,
    SyntheticConfig,
    TrafficSpec,
)


def heavy_synthetic(config: Optional[SyntheticConfig] = None) -> TrafficSpec:
    """Section 4.1 heavy traffic: all nodes send, lengths U[1,5]."""
    return TrafficSpec("heavy", config)


def light_synthetic(config: Optional[SyntheticConfig] = None) -> TrafficSpec:
    """Section 4.1 light traffic: 1/3 senders, long-message tail,
    non-responsive periods."""
    return TrafficSpec("light", config)


def cshift(config: Optional[CShiftConfig] = None) -> TrafficSpec:
    """Section 4.3 cyclic shift (all-to-all)."""
    return TrafficSpec("cshift", config)


def em3d(config: Optional[Em3dConfig] = None) -> TrafficSpec:
    """Section 4.4 EM3D (light- or heavy-communication parameterisation)."""
    return TrafficSpec("em3d", config)


def radix_sort(config: Optional[RadixSortConfig] = None) -> TrafficSpec:
    """Section 4.5 radix sort (scan and optional coalesce phases)."""
    return TrafficSpec("radix", config)


def hotspot(config: Optional[HotSpotConfig] = None) -> TrafficSpec:
    """Hot-spot traffic (Section 1 / Section 5's dynamic bandwidth matching)."""
    return TrafficSpec("hotspot", config)
