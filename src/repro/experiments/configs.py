"""Per-network best NIFDY parameters (Table 3, right half).

The paper tuned (O, B, D, W) per network for the best average performance
over the heavy and light synthetic loads.  The qualitative structure it
reports (and which our sweep bench re-derives):

* meshes/tori -- tiny volume and low bisection: restrictive parameters
  (Section 2.4.3's initial guess: O=4, B=4, D=1, W=2);
* full fat tree -- big volume, big bisection: generous scalar parameters
  (O=8, B=8), bulk only marginally useful;
* store-and-forward fat tree -- much higher latency: larger window;
* CM-5 fat tree -- round-trip twice the full fat tree's but smaller volume
  and bisection, so *smaller* bulk windows win.

One deviation from Table 3: the paper found the butterfly best with NO
bulk dialogs (its scalar round trip is only three hops).  In this
reproduction the scalar ack is gated on processor accept, so the effective
scalar round trip includes the receiver's polling latency and a small bulk
window still pays off on light traffic; the sweep bench
(`benchmarks/test_table3_characteristics.py`) re-derives the table, and
EXPERIMENTS.md records the difference.
"""

from __future__ import annotations

from typing import Dict

from ..nic import NifdyParams

BEST_PARAMS: Dict[str, NifdyParams] = {
    "mesh2d": NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=2),
    "mesh3d": NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=2),
    "torus2d": NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=2),
    "fattree": NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=2),
    "fattree-sf": NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=4),
    "cm5": NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=2),
    "butterfly": NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=2),
    "multibutterfly": NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=2),
    # Section 6.3 extension: adaptive mesh -- mesh-like volume, so mesh-like
    # admission control.
    "mesh2d-adaptive": NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=2),
    # Spraying variants keep the base fabric's admission control; spraying
    # changes ordering, not volume or bisection.
    "fattree-spray": NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=2),
    "multibutterfly-spray": NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=2),
}


def best_params(network: str) -> NifdyParams:
    """The tuned NIFDY parameters for ``network`` (Table 3)."""
    try:
        return BEST_PARAMS[network]
    except KeyError:
        raise ValueError(f"no tuned parameters for network {network!r}") from None
