"""Experiment harness: specs, tuned parameters, and the runner."""

from .configs import BEST_PARAMS, best_params
from .runner import (
    NIC_MODES,
    ExperimentResult,
    TrafficFactory,
    make_nic_factory,
    run_experiment,
)
from .sweep import (
    SweepPoint,
    default_param_grid,
    sweep_machine_sizes,
    sweep_nifdy_params,
    sweep_offered_load,
)
from .workloads import (
    cshift,
    em3d,
    heavy_synthetic,
    hotspot,
    light_synthetic,
    radix_sort,
)

__all__ = [
    "BEST_PARAMS",
    "NIC_MODES",
    "SweepPoint",
    "ExperimentResult",
    "TrafficFactory",
    "best_params",
    "cshift",
    "default_param_grid",
    "em3d",
    "heavy_synthetic",
    "hotspot",
    "light_synthetic",
    "make_nic_factory",
    "radix_sort",
    "run_experiment",
    "sweep_machine_sizes",
    "sweep_nifdy_params",
    "sweep_offered_load",
]
