"""Experiment harness: specs, tuned parameters, the runner, and the engine."""

from .configs import BEST_PARAMS, best_params
from .engine import (
    ResultCache,
    SweepEngine,
    SweepPoint,
    SweepStats,
    code_version,
)
from .runner import (
    NIC_MODES,
    ExperimentResult,
    TrafficFactory,
    make_nic_factory,
    run_experiment,
)
from .spec import ExperimentSpec, SpecSerializationError
from .sweep import (
    REORDER_VARIANT_MODES,
    default_param_grid,
    machine_size_specs,
    nifdy_param_specs,
    offered_load_specs,
    reorder_variant_specs,
    sweep_machine_sizes,
    sweep_nifdy_params,
    sweep_offered_load,
    sweep_reorder_variants,
)
from .workloads import (
    cshift,
    em3d,
    heavy_synthetic,
    hotspot,
    incast,
    light_synthetic,
    perf_reference_spec,
    radix_sort,
    rpc_fanout,
)

__all__ = [
    "BEST_PARAMS",
    "NIC_MODES",
    "REORDER_VARIANT_MODES",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCache",
    "SpecSerializationError",
    "SweepEngine",
    "SweepPoint",
    "SweepStats",
    "TrafficFactory",
    "best_params",
    "code_version",
    "cshift",
    "default_param_grid",
    "em3d",
    "heavy_synthetic",
    "hotspot",
    "incast",
    "light_synthetic",
    "machine_size_specs",
    "make_nic_factory",
    "nifdy_param_specs",
    "offered_load_specs",
    "perf_reference_spec",
    "radix_sort",
    "reorder_variant_specs",
    "rpc_fanout",
    "run_experiment",
    "sweep_machine_sizes",
    "sweep_nifdy_params",
    "sweep_offered_load",
    "sweep_reorder_variants",
]
