"""repro: a full reproduction of "NIFDY: A Low Overhead, High Throughput
Network Interface" (Callahan & Goldstein, ISCA 1995).

The package provides:

* :mod:`repro.sim` -- deterministic event-driven simulation kernel.
* :mod:`repro.networks` -- the paper's topologies (meshes, tori, fat trees,
  butterflies) built from flit-level routers and credit-flow-controlled links.
* :mod:`repro.nic` -- the NIFDY unit, its lossy-network extension, and the
  plain / buffers-only baselines.
* :mod:`repro.node` -- processor timing model (CM-5 measured overheads).
* :mod:`repro.traffic` -- the paper's workloads (synthetic heavy/light,
  cyclic shift, EM3D, radix sort).
* :mod:`repro.experiments` -- one-call experiment runner used by the
  benchmark suite that regenerates every table and figure.
* :mod:`repro.analysis` -- the closed-form bandwidth model (Equations 1-3)
  and the NIFDY parameter advisor of Section 2.4.
"""

from .nic import (
    BufferedNIC,
    NifdyNIC,
    NifdyParams,
    PlainNIC,
    RetransmittingNifdyNIC,
)
from .networks import NETWORK_NAMES, build_network
from .packets import Packet, PacketKind
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "BufferedNIC",
    "NETWORK_NAMES",
    "NifdyNIC",
    "NifdyParams",
    "Packet",
    "PacketKind",
    "PlainNIC",
    "RetransmittingNifdyNIC",
    "Simulator",
    "build_network",
    "__version__",
]
