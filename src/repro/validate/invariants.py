"""Machine-checked protocol invariants: the guarantees, continuously verified.

NIFDY's value proposition (Sections 2 and 6.2 of the paper) is a short list
of *guarantees* delivered with *bounded resources*: every packet handed to
the NIC is delivered to the destination processor exactly once and in
per-(src, dst) send order, using at most O outstanding-packet-table entries,
B pool buffers, D concurrent receiver dialogs, and W reorder buffers per
dialog -- and on a lossy network nothing is ever lost *silently* (a packet
is delivered, or its sender is explicitly told it was abandoned).  The
example-based tests spot-check those claims; the :class:`InvariantMonitor`
checks them on **every** run it is attached to, live (as events stream past
on the :class:`~repro.obs.EventBus`) and again at end-of-run (conservation
and liveness properties that only settle when the run does).

The monitor is a pure observer: it subscribes to the bus and *reads* NIC
state, never mutates it, so a monitored run delivers the same packets at the
same cycles as an unmonitored one -- and a run without ``observe=`` keeps
the ``obs=None`` fast path untouched.

Invariants checked
==================

``exactly_once``      an ``accept`` event fires at most once per packet uid
``in_order``          per-(src, dst) ``pair_seq`` at accept is increasing
                      (gated per *receiver*: checked when the fabric
                      preserves order or that node's NIC restores it)
``opt_bound``         OPT occupancy never exceeds O
``pool_bound``        pool occupancy never exceeds B
``dialog_bound``      concurrent receiver dialogs never exceed D
``window_bound``      per-dialog reorder buffering never exceeds W
``ack_conservation``  acks consumed never exceed acks generated (end-of-run)
``no_silent_loss``    every injected packet is eventually accepted or
                      explicitly abandoned (end-of-run, completed runs only)

Reorder-tolerant receivers (:class:`~repro.nic.ReorderTolerantNIC`) add:

NIC-offloaded collectives (:class:`~repro.nic.CollectiveEngine`) add:

``no_double_contribution``   a combining NIC never folds the same child's
                             contribution into one epoch twice (duplicates
                             must be discarded, not combined)
``release_after_all_arrive`` a NIC releases an epoch only after every
                             expected contribution (children + local) was
                             folded in
``collective_completion``    no epoch still holds combining state at the
                             end of a completed run (end-of-run)

Reorder-tolerant receivers (:class:`~repro.nic.ReorderTolerantNIC`) add:

``reorder_window_bound``  per-source reorder buffers stay inside
                          ``[expect, expect + rx_window)`` and never exceed
                          ``rx_window`` packets
``bitmap_conservation``   the advertised SACK bitmap exactly mirrors the
                          reorder buffer (bitmap policy)
``no_cache_leak``         the cache occupancy counter matches the buffers, a
                          ``dropcache`` receiver never exceeds its capacity,
                          and nothing is still cached at the end of a
                          completed run unless its sender abandoned it
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs.events import EventBus, EventKind, ObsEvent

#: Every invariant the monitor can flag, in reporting order.
INVARIANTS = (
    "exactly_once",
    "in_order",
    "opt_bound",
    "pool_bound",
    "dialog_bound",
    "window_bound",
    "ack_conservation",
    "no_silent_loss",
    "no_double_contribution",
    "release_after_all_arrive",
    "collective_completion",
    "reorder_window_bound",
    "bitmap_conservation",
    "no_cache_leak",
)


@dataclass
class Violation:
    """One observed breach of a protocol invariant.

    ``cycle``/``node`` locate it in the run; ``uid``/``src``/``dst`` name
    the packet when one is involved; ``detail`` is the human-readable
    diagnosis including the relevant node state; ``event`` is the bus event
    that exposed it (None for end-of-run checks).
    """

    invariant: str
    cycle: int
    node: int
    detail: str
    uid: int = -1
    src: int = -1
    dst: int = -1
    event: Optional[ObsEvent] = dataclasses.field(default=None, compare=False)

    def describe(self) -> str:
        where = f"node {self.node}" if self.node >= 0 else "run"
        packet = f" packet#{self.uid}" if self.uid >= 0 else ""
        return (
            f"[{self.invariant}] @{self.cycle} {where}{packet}: {self.detail}"
        )

    def to_dict(self) -> Dict:
        """JSON-able form (the shape chaos repro artifacts carry)."""
        return {
            "invariant": self.invariant,
            "cycle": self.cycle,
            "node": self.node,
            "uid": self.uid,
            "src": self.src,
            "dst": self.dst,
            "detail": self.detail,
        }


class InvariantViolation(RuntimeError):
    """Raised (strict mode) the moment an invariant breaks, carrying the
    structured :class:`Violation` so handlers can act on more than a
    string."""

    def __init__(self, violation: Violation):
        super().__init__(violation.describe())
        self.violation = violation


class InvariantMonitor:
    """Checks the protocol guarantees against a live run.

    Attach with :meth:`attach` (wildcard-subscribes to the bus and keeps
    read-only NIC references for the resource-bound checks), then call
    :meth:`finish` once the run ends for the conservation/liveness checks.
    ``strict=True`` raises :class:`InvariantViolation` at the offending
    event; the default collects into :attr:`violations` (bounded by
    ``max_violations``; persistent state breaches are reported once per
    (invariant, node), not once per event).
    """

    def __init__(
        self,
        check_order: bool = True,
        strict: bool = False,
        max_violations: int = 100,
        fabric_in_order: bool = False,
    ):
        self.check_order = check_order
        self.fabric_in_order = fabric_in_order
        self.strict = strict
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.dropped_violations = 0
        self.events_checked = 0
        self._nics: List = []
        self._accepted: Dict[int, int] = {}        # uid -> accept cycle
        self._abandoned: Set[int] = set()
        self._injected: Dict[int, Tuple[int, int, int]] = {}  # uid -> (cyc, src, dst)
        self._last_seq: Dict[Tuple[int, int], int] = {}
        # (combiner node, epoch) -> contributor srcs folded in so far
        self._coll_contribs: Dict[Tuple[int, int], Set[int]] = {}
        self._flagged: Set[Tuple[str, int]] = set()  # dedup for state breaches
        self._finished = False

    # ------------------------------------------------------------- wiring
    def attach(self, bus: EventBus, nics: Sequence = ()) -> "InvariantMonitor":
        bus.subscribe(None, self.on_event)
        self._nics = list(nics)
        return self

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (
                f"invariants ok ({self.events_checked:,} events checked)"
            )
        lines = [
            f"{len(self.violations)} invariant violation(s) over "
            f"{self.events_checked:,} events:"
        ]
        lines += [f"  {v.describe()}" for v in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)

    # ---------------------------------------------------------- recording
    def _flag(self, violation: Violation, once_key: Optional[Tuple] = None) -> None:
        if once_key is not None:
            if once_key in self._flagged:
                return
            self._flagged.add(once_key)
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        else:
            self.dropped_violations += 1
        if self.strict:
            raise InvariantViolation(violation)

    # ------------------------------------------------------- event checks
    def on_event(self, event: ObsEvent) -> None:
        self.events_checked += 1
        kind = event.kind
        if kind == EventKind.INJECT:
            self._injected.setdefault(
                event.uid, (event.cycle, event.src, event.dst)
            )
        elif kind == EventKind.ACCEPT:
            self._check_accept(event)
        elif kind == EventKind.ABANDON:
            self._abandoned.add(event.uid)
        elif kind == EventKind.COLL_CONTRIB:
            self._check_contribution(event)
        elif kind == EventKind.COLL_RELEASE:
            self._check_release(event)
        if 0 <= event.node < len(self._nics):
            self._check_node_state(self._nics[event.node], event)

    def _check_accept(self, event: ObsEvent) -> None:
        previous = self._accepted.get(event.uid)
        if previous is not None:
            self._flag(Violation(
                "exactly_once", event.cycle, event.node,
                f"packet accepted again (first accept @{previous})",
                uid=event.uid, src=event.src, dst=event.dst, event=event,
            ))
            return
        self._accepted[event.uid] = event.cycle
        if not self.check_order or event.seq < 0:
            return
        if not self._order_expected(event.node):
            return
        key = (event.src, event.dst)
        last = self._last_seq.get(key, -1)
        if event.seq <= last:
            self._flag(Violation(
                "in_order", event.cycle, event.node,
                f"pair_seq {event.seq} accepted after {last} "
                f"for {event.src}->{event.dst}",
                uid=event.uid, src=event.src, dst=event.dst, event=event,
            ))
        else:
            self._last_seq[key] = event.seq

    # ------------------------------------------------- collective checks
    def _check_contribution(self, event: ObsEvent) -> None:
        """``seq`` carries the epoch, ``src`` the contributing node (a
        child of the combiner, or the combiner itself)."""
        contribs = self._coll_contribs.setdefault((event.node, event.seq), set())
        if event.src in contribs:
            self._flag(Violation(
                "no_double_contribution", event.cycle, event.node,
                f"node {event.src} contributed twice to epoch {event.seq}",
                src=event.src, event=event,
            ))
        else:
            contribs.add(event.src)

    def _check_release(self, event: ObsEvent) -> None:
        """A NIC released epoch ``seq``: every expected contribution
        (its children plus its own) must already be folded in."""
        engine = None
        if 0 <= event.node < len(self._nics):
            engine = getattr(self._nics[event.node], "collective", None)
        if engine is None:
            return
        expected = len(engine.children) + 1
        got = self._coll_contribs.pop((event.node, event.seq), set())
        if len(got) < expected:
            self._flag(Violation(
                "release_after_all_arrive", event.cycle, event.node,
                f"epoch {event.seq} released after {len(got)} of "
                f"{expected} contributions ({sorted(got)})",
                event=event,
            ))

    def _order_expected(self, node: int) -> bool:
        """Per-receiver gating: in-order delivery is a checkable guarantee
        when the fabric preserves order, or when *this* node's NIC restores
        it (duck-typed capability) -- so a reorder-tolerant receiver on a
        spraying fabric is still held to eventual in-order delivery, while a
        plain NIC on the same fabric is exempt."""
        if self.fabric_in_order:
            return True
        if 0 <= node < len(self._nics):
            return bool(getattr(self._nics[node], "guarantees_order", False))
        # No NICs registered (bus-only attachment): trust the caller's
        # check_order flag, as the pre-per-receiver monitor did.
        return True

    # ----------------------------------------------------- resource bounds
    def _check_node_state(self, nic, event: Optional[ObsEvent]) -> None:
        """Resource-bound invariants on one NIC, read-only.

        Duck-typed like the :class:`~repro.obs.sampler.StateSampler`: NICs
        without a pool/OPT (plain, buffered) have no bound to check.
        """
        cycle = event.cycle if event is not None else -1
        node = getattr(nic, "node_id", -1)
        streams = getattr(nic, "reorder_rx", None)
        if streams is not None:
            self._check_reorder_state(nic, streams, event, cycle, node)
        params = getattr(nic, "params", None)
        if params is None:
            return
        opt = getattr(nic, "opt", None)
        if opt is not None and len(opt) > params.opt_size:
            self._flag(Violation(
                "opt_bound", cycle, node,
                f"OPT holds {len(opt)} destinations, O={params.opt_size}",
                event=event,
            ), once_key=("opt_bound", node))
        pool = getattr(nic, "pool", None)
        if pool is not None and len(pool) > params.pool_size:
            self._flag(Violation(
                "pool_bound", cycle, node,
                f"pool holds {len(pool)} packets, B={params.pool_size}",
                event=event,
            ), once_key=("pool_bound", node))
        dialogs = getattr(nic, "_rx_dialogs", None)
        if dialogs is not None:
            if len(dialogs) > params.dialogs:
                self._flag(Violation(
                    "dialog_bound", cycle, node,
                    f"{len(dialogs)} concurrent dialogs, D={params.dialogs}",
                    event=event,
                ), once_key=("dialog_bound", node))
            for dialog in dialogs.values():
                if len(dialog.buffers) > dialog.window:
                    self._flag(Violation(
                        "window_bound", cycle, node,
                        f"dialog #{dialog.dialog} from {dialog.src} buffers "
                        f"{len(dialog.buffers)} packets, W={dialog.window}",
                        src=dialog.src, event=event,
                    ), once_key=("window_bound", node, dialog.dialog))

    def _check_reorder_state(self, nic, streams, event, cycle, node) -> None:
        """Reorder-tolerant receiver invariants, read-only (duck-typed on
        the ``reorder_rx`` capability)."""
        rp = nic.reorder_params
        buffered = 0
        for src, st in streams.items():
            buffered += len(st.buffer)
            if st.buffer:
                lo, hi = min(st.buffer), max(st.buffer)
                if (
                    len(st.buffer) > rp.rx_window
                    or lo < st.expect
                    or hi >= st.expect + rp.rx_window
                ):
                    self._flag(Violation(
                        "reorder_window_bound", cycle, node,
                        f"reorder buffer for src {src} holds "
                        f"{len(st.buffer)} seqs in [{lo}, {hi}] with "
                        f"expect={st.expect}, rx_window={rp.rx_window}",
                        src=src, event=event,
                    ), once_key=("reorder_window_bound", node, src))
            if nic.policy == "bitmap" and st.bitmap != set(st.buffer):
                self._flag(Violation(
                    "bitmap_conservation", cycle, node,
                    f"SACK bitmap for src {src} advertises "
                    f"{sorted(st.bitmap)} but the buffer holds "
                    f"{sorted(st.buffer)}",
                    src=src, event=event,
                ), once_key=("bitmap_conservation", node, src))
        cached = getattr(nic, "reorder_cached", buffered)
        if cached != buffered:
            self._flag(Violation(
                "no_cache_leak", cycle, node,
                f"cache occupancy counter says {cached} but the stream "
                f"buffers hold {buffered}",
                event=event,
            ), once_key=("no_cache_leak", node))
        elif nic.policy == "dropcache" and cached > rp.cache_capacity:
            self._flag(Violation(
                "no_cache_leak", cycle, node,
                f"dropcache receiver holds {cached} out-of-order packets, "
                f"capacity {rp.cache_capacity}",
                event=event,
            ), once_key=("no_cache_leak", node))

    # --------------------------------------------------- end-of-run checks
    def finish(self, check_loss: bool = True, cycle: int = -1) -> List[Violation]:
        """Run the checks that only settle when the run does.

        ``check_loss=False`` skips ``no_silent_loss`` -- correct for
        fixed-horizon or incomplete runs, where in-flight packets at the
        final cycle are expected, not lost.  Idempotent; returns all
        violations collected over the monitor's lifetime.
        """
        if self._finished:
            return self.violations
        self._finished = True
        for nic in self._nics:
            self._check_node_state(nic, None)
        acks_sent = sum(getattr(nic, "acks_sent", 0) for nic in self._nics)
        acks_received = sum(
            getattr(nic, "acks_received", 0) for nic in self._nics
        )
        if self._nics and acks_received > acks_sent:
            self._flag(Violation(
                "ack_conservation", cycle, -1,
                f"{acks_received} acks consumed but only {acks_sent} "
                "generated: acks materialised from nowhere",
            ))
        if check_loss:
            # A completed run must not leave a collective half-combined:
            # every epoch that was entered must have been released.
            for nic in self._nics:
                engine = getattr(nic, "collective", None)
                if engine is None or not engine.pending_epochs:
                    continue
                node = getattr(nic, "node_id", -1)
                epochs = sorted(engine._epochs)
                self._flag(Violation(
                    "collective_completion", cycle, node,
                    f"epoch(s) {epochs} still hold combining state at "
                    "run end (collective never released)",
                ))
            # A completed run must not end with live packets parked in a
            # reorder buffer: everything cached was either delivered (and
            # hence removed) or written off by its sender's abandonment.
            for nic in self._nics:
                streams = getattr(nic, "reorder_rx", None)
                if streams is None:
                    continue
                node = getattr(nic, "node_id", -1)
                for src, st in streams.items():
                    leaked = [
                        p for p in st.buffer.values() if p.abandoned_cycle < 0
                    ]
                    if st.stalled is not None and (
                        st.stalled[0].abandoned_cycle < 0
                    ):
                        leaked.append(st.stalled[0])
                    for packet in leaked:
                        self._flag(Violation(
                            "no_cache_leak", cycle, node,
                            f"seq {packet.seq} from {src} still cached at "
                            "run end, never delivered nor abandoned",
                            uid=packet.uid, src=packet.src, dst=packet.dst,
                        ))
            lost = [
                (uid, meta) for uid, meta in self._injected.items()
                if uid not in self._accepted and uid not in self._abandoned
            ]
            for uid, (inj_cycle, src, dst) in sorted(lost):
                self._flag(Violation(
                    "no_silent_loss", cycle, -1,
                    f"injected @{inj_cycle}, never accepted nor abandoned",
                    uid=uid, src=src, dst=dst,
                ))
        return self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"<InvariantMonitor {state}, {self.events_checked} events>"
