"""``repro.validate``: machine-checked guarantees + adversarial search.

Two halves.  :mod:`~repro.validate.invariants` is the
:class:`InvariantMonitor` -- a pure observer on the :mod:`repro.obs` event
bus that verifies the protocol's guarantees (exactly-once, in-order,
resource bounds O/B/D/W, ack conservation, no silent loss) on every run
it is attached to, via ``Observability(validate=True)``.
:mod:`~repro.validate.chaos` is the :class:`ChaosEngine` -- a seeded
random search over fault plan × workload × NIFDY parameters that runs
each trial under the monitor, and shrinks any failure (delta-debugging
the fault plan, then the traffic) to a minimal JSON reproducer for
``repro chaos --replay``.

This package sits ABOVE ``repro.experiments`` (the chaos engine drives
the SweepEngine), which is why the runner imports the monitor lazily.
"""

from .chaos import (
    ChaosConfig,
    ChaosEngine,
    ChaosFinding,
    ChaosReport,
    classify_point,
    classify_result,
    replay_artifact,
    shrink_fault_plan,
    shrink_traffic_config,
)
from .invariants import (
    INVARIANTS,
    InvariantMonitor,
    InvariantViolation,
    Violation,
)

__all__ = [
    "ChaosConfig",
    "ChaosEngine",
    "ChaosFinding",
    "ChaosReport",
    "INVARIANTS",
    "InvariantMonitor",
    "InvariantViolation",
    "Violation",
    "classify_point",
    "classify_result",
    "replay_artifact",
    "shrink_fault_plan",
    "shrink_traffic_config",
]
