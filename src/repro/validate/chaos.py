"""Seeded chaos search over fault × workload × parameter space.

The ROADMAP's "handle as many scenarios as you can imagine" cannot be met
by hand-written cases: the failure modes cluster in retransmit × window
interactions that nobody imagines in advance.  The :class:`ChaosEngine`
searches for them mechanically.  Each *trial* is a seeded-random
:class:`~repro.experiments.ExperimentSpec` -- a random
:class:`~repro.faults.FaultPlan` (loss bursts weighted heaviest, link
fail/repair windows over *real* link names enumerated from the topology,
node pauses) against a random workload and random NIFDY parameters -- run
with the :class:`~repro.validate.InvariantMonitor` attached, fanned out
through the :class:`~repro.farm.FarmEngine` (cache off: validated
results must not alias unvalidated cache entries; ``point_timeout`` turns
a wedged trial into a reported failure).  The farm buys the gauntlet
fault tolerance of its own: a trial that kills its worker outright is
retried and, failing that, quarantined instead of taking the batch down,
and an interrupted batch resumes from its manifest (written under
``<artifact_dir>/campaigns/``) rather than starting over.

When a trial fails -- an invariant violation, a stall, a crash, an
incomplete run -- the engine **shrinks** it: delta-debugging (ddmin) over
the fault plan's events, then halving of the traffic config's integer
knobs, re-running the sim after each probe and keeping only changes that
still reproduce the same failure class.  The minimal reproducer is written
as a JSON artifact that ``repro chaos --replay <file>`` re-runs
deterministically -- the distilled bug report, with everything incidental
removed.

Every random draw comes from per-trial ``random.Random`` instances seeded
from ``ChaosConfig.seed``, and every simulation derives its randomness
from the spec's own seed, so a chaos batch is exactly reproducible.
"""

from __future__ import annotations

import dataclasses
import json
import random
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ..faults import FaultEvent, FaultPlan
from ..networks import build_network
from ..nic import (
    REORDER_NIC_MODES,
    CollectiveParams,
    NifdyParams,
    ReorderParams,
)
from ..obs import Observability
from ..sim import Simulator
from ..traffic import (
    AllReduceConfig,
    CShiftConfig,
    Em3dConfig,
    HotSpotConfig,
    IncastConfig,
    PairStreamConfig,
    RadixSortConfig,
    RpcFanoutConfig,
    SyntheticConfig,
    TrafficSpec,
)
from ..experiments import ExperimentSpec, run_experiment

ARTIFACT_KIND = "repro-chaos-reproducer"
ARTIFACT_VERSION = 1


@dataclass
class ChaosConfig:
    """One chaos batch: how many trials, against what, how hard to shrink."""

    trials: int = 20
    seed: int = 0
    network: str = "fattree"
    num_nodes: int = 16
    #: Registry names to draw workloads from.
    traffics: Tuple[str, ...] = (
        "cshift", "radix", "hotspot", "pairstream", "allreduce",
    )
    #: Where trials run their barriers/reductions: ``"nic"`` attaches the
    #: combining-tree engine so faults strike mid-collective (a link fail
    #: during a collective must neither hang nor double-contribute).
    barrier_modes: Tuple[str, ...] = ("host", "nic")
    #: NIC modes to draw from per trial (the scenario pack mixes the
    #: reorder-tolerant receivers in here on spraying fabrics).
    nic_modes: Tuple[str, ...] = ("nifdy",)
    #: Per-hop path-skew jitters to draw from (cycles; needs a network
    #: whose builder accepts ``path_skew``, i.e. the ``-spray`` fabrics).
    path_skews: Tuple[int, ...] = (0,)
    #: Fault events per trial drawn from 1..max_faults.
    max_faults: int = 3
    #: Every fault starts and ends inside [0, fault_window) so recovery has
    #: the rest of the run to finish.
    fault_window: int = 40_000
    max_cycles: int = 2_000_000
    watchdog_cycles: int = 100_000
    max_retries: int = 25
    jobs: int = 1
    #: Per-trial wall-clock bound (seconds): the farm's liveness watchdog.
    point_timeout: Optional[float] = None
    #: Farm execution backend for the trial fan-out (see
    #: :func:`repro.farm.executor_names`).
    executor: str = "pool"
    #: Extra attempts per trial when the trial kills its worker.
    retries: int = 1
    #: Max simulation probes the shrinker may spend per failure.
    shrink_budget: int = 48
    artifact_dir: str = "benchmarks/results/chaos"


@dataclass
class ChaosFinding:
    """One failed trial, shrunk and written to disk."""

    trial: int
    failure: str          # "invariant:<name>" | "stall" | "error" | ...
    detail: str
    artifact: str         # path of the JSON reproducer
    original_events: int
    shrunk_events: int
    shrink_probes: int

    def describe(self) -> str:
        return (
            f"trial {self.trial}: {self.failure} "
            f"(plan {self.original_events} -> {self.shrunk_events} event(s), "
            f"{self.shrink_probes} shrink probe(s)) -> {self.artifact}"
        )


@dataclass
class ChaosReport:
    """What one chaos batch found."""

    trials: int
    findings: List[ChaosFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        if self.ok:
            return f"chaos: {self.trials} trial(s), no failures"
        lines = [f"chaos: {len(self.findings)} of {self.trials} trial(s) failed:"]
        lines += ["  " + f.describe() for f in self.findings]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Failure classification -- shared by the batch, the shrinker's predicate,
# and --replay, so "same failure" means the same thing everywhere.
# ---------------------------------------------------------------------------

def classify_result(result) -> Tuple[Optional[str], str]:
    """(failure class, detail) for one ExperimentResult; (None, "") if ok."""
    if result.violations:
        first = result.violations[0]
        return (
            f"invariant:{first['invariant']}",
            f"{len(result.violations)} violation(s); first: {first}",
        )
    if result.stall_report:
        return "stall", result.stall_report
    if not result.completed:
        return "incomplete", (
            f"hit max_cycles with sent={result.sent} "
            f"delivered={result.delivered} abandoned={result.abandoned}"
        )
    return None, ""


def classify_point(point) -> Tuple[Optional[str], str]:
    """Same, for a SweepPoint coming back from the engine."""
    if point.error is not None:
        return ("timeout" if point.timed_out else "error"), point.error
    if point.violations:
        first = point.violations[0]
        return (
            f"invariant:{first['invariant']}",
            f"{len(point.violations)} violation(s); first: {first}",
        )
    if point.stall_report:
        return "stall", point.stall_report
    if not point.completed:
        return "incomplete", (
            f"hit max_cycles with sent={point.sent} delivered={point.delivered}"
        )
    return None, ""


def _failure_family(failure: Optional[str]) -> Optional[str]:
    """Coarse class the shrinker must preserve: any invariant violation
    counts as reproducing an invariant failure (shrinking often shifts
    *which* invariant trips first), but a stall must stay a stall."""
    if failure is None:
        return None
    return failure.split(":", 1)[0]


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def shrink_fault_plan(
    events: Sequence[FaultEvent],
    predicate: Callable[[List[FaultEvent]], bool],
    budget: int = 48,
) -> Tuple[List[FaultEvent], int]:
    """ddmin over fault events: a minimal subsequence still failing.

    ``predicate(candidate_events)`` re-runs the experiment and reports
    whether the failure survives.  Returns ``(events, probes_spent)``;
    the result is never larger than the input and the empty plan is tried
    first (the failure may not need faults at all).
    """
    events = list(events)
    probes = 0
    if events and probes < budget:
        probes += 1
        if predicate([]):
            return [], probes
    granularity = 2
    while len(events) > 1 and probes < budget:
        chunk = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if not candidate:
                continue
            probes += 1
            if predicate(candidate):
                events = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if probes >= budget:
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return events, probes


def shrink_traffic_config(
    config,
    predicate: Callable[[object], bool],
    budget: int = 16,
) -> Tuple[object, int]:
    """Halve each integer knob of a traffic config while the failure
    survives.  Generic over any config dataclass: bools are skipped,
    configs whose validators reject a halved value are skipped, and every
    kept change re-verified the failure, so the result is always a valid,
    still-failing config no larger than the input."""
    probes = 0
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        while value > 1 and probes < budget:
            try:
                candidate = dataclasses.replace(config, **{f.name: value // 2})
            except Exception:  # noqa: BLE001 - validator said no; move on
                break
            probes += 1
            if predicate(candidate):
                config = candidate
                value = value // 2
            else:
                break
    return config, probes


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class ChaosEngine:
    """Generates, runs, classifies, and shrinks chaos trials."""

    def __init__(self, config: Optional[ChaosConfig] = None):
        self.config = config or ChaosConfig()
        # Enumerate the topology's real link names once, so generated
        # link_fail patterns always match something.
        net = build_network(
            self.config.network, Simulator(), self.config.num_nodes,
            rng=random.Random(0),
        )
        self.link_names = [link.name for link in net.links]

    # -------------------------------------------------------- generation
    def _trial_rng(self, trial: int) -> random.Random:
        return random.Random(self.config.seed * 1_000_003 + trial)

    def _random_traffic(self, rng: random.Random) -> TrafficSpec:
        name = rng.choice(self.config.traffics)
        n = self.config.num_nodes
        if name == "cshift":
            cfg = CShiftConfig(
                words_per_phase=rng.choice((24, 48)),
                barriers=rng.random() < 0.3,
            )
        elif name == "radix":
            cfg = RadixSortConfig(buckets=64, keys_per_processor=32)
        elif name == "hotspot":
            cfg = HotSpotConfig(
                packets_per_node=rng.choice((40, 80)),
                hot_fraction=rng.choice((0.1, 0.3)),
            )
        elif name == "pairstream":
            cfg = PairStreamConfig(
                src=0, dst=rng.randrange(1, n),
                packets=rng.choice((40, 80)),
                bulk=rng.random() < 0.5,
            )
        elif name == "em3d":
            cfg = Em3dConfig.light_communication(scale=0.05, iterations=1)
        elif name == "incast":
            cfg = IncastConfig(
                rounds=rng.choice((2, 3)),
                packets_per_round=rng.choice((4, 8)),
                fan_in=rng.choice((0, max(1, n // 2))),
            )
        elif name == "rpc":
            cfg = RpcFanoutConfig(
                fanout=rng.choice((4, n - 1)),
                rounds=rng.choice((2, 3)),
                reply_packets=rng.choice((2, 4)),
            )
        elif name == "allreduce":
            cfg = AllReduceConfig(
                rounds=rng.choice((3, 6)),
                background_words=rng.choice((24, 48)),
            )
        elif name in ("heavy", "light"):
            cfg = SyntheticConfig(
                heavy=name == "heavy",
                send_probability=1.0 if name == "heavy" else 1 / 3,
                max_phases=rng.choice((3, 6)),
            )
        else:
            cfg = None  # registry default config
        return TrafficSpec(name, cfg)

    def _random_fault(self, rng: random.Random) -> FaultEvent:
        window = self.config.fault_window
        at = rng.randrange(500, window // 2)
        until = at + rng.randrange(2_000, window // 2)
        roll = rng.random()
        if roll < 0.6:
            return FaultEvent(
                kind="loss_burst", at=at, until=until,
                prob=rng.choice((0.05, 0.1, 0.2, 0.4)),
                net=rng.choice(("any", "data", "ack")),
                link=rng.choice((None, rng.choice(self.link_names))),
            )
        if roll < 0.85:
            return FaultEvent(
                kind="link_fail", at=at, until=until,
                link=rng.choice(self.link_names),
            )
        return FaultEvent(
            kind="node_pause", at=at, until=until,
            node=rng.randrange(self.config.num_nodes),
        )

    def _random_params(self, rng: random.Random) -> NifdyParams:
        return NifdyParams(
            opt_size=rng.choice((2, 4, 8)),
            pool_size=rng.choice((4, 8)),
            dialogs=rng.choice((1, 2)),
            window=rng.choice((2, 4, 8)),
        )

    def _random_reorder_params(self, rng: random.Random) -> ReorderParams:
        tx_window = rng.choice((4, 8))
        return ReorderParams(
            tx_window=tx_window,
            rx_window=rng.choice((tx_window, 2 * tx_window)),
            cache_capacity=rng.choice((0, 4, 16)),
        )

    def trial_spec(self, trial: int) -> ExperimentSpec:
        """The (deterministic) spec for trial number ``trial``."""
        rng = self._trial_rng(trial)
        cfg = self.config
        plan = FaultPlan(
            [self._random_fault(rng)
             for _ in range(rng.randint(1, cfg.max_faults))]
        )
        traffic = self._random_traffic(rng)
        params = self._random_params(rng)
        nic_mode = rng.choice(cfg.nic_modes)
        reorder_params = (
            self._random_reorder_params(rng)
            if nic_mode in REORDER_NIC_MODES else None
        )
        skew = rng.choice(cfg.path_skews)
        collective_params = CollectiveParams(
            barrier=rng.choice(cfg.barrier_modes),
            fanout=rng.choice((2, 4, 8)),
        )
        return ExperimentSpec(
            network=cfg.network,
            traffic=traffic,
            num_nodes=cfg.num_nodes,
            nic_mode=nic_mode,
            nifdy_params=params,
            reorder_params=reorder_params,
            collective_params=collective_params,
            seed=cfg.seed * 7_919 + trial,
            max_cycles=cfg.max_cycles,
            watchdog_cycles=cfg.watchdog_cycles,
            max_retries=cfg.max_retries,
            fault_plan=plan,
            network_overrides={"path_skew": skew} if skew else None,
            observe=Observability(validate=True),
            label=f"chaos-{cfg.seed}-{trial}",
        )

    # --------------------------------------------------------------- run
    def run(self, progress: Optional[Callable] = None) -> ChaosReport:
        """Run the batch; shrink and archive every failure found.

        ``progress`` is forwarded to the underlying farm:
        ``(done, total, point) -> None`` after each trial resolves.

        The batch runs on a :class:`~repro.farm.FarmEngine` with a
        manifest under ``<artifact_dir>/campaigns/``: kill the batch at
        any point and re-running the same config resumes it.  A manifest
        from a *finished* batch is discarded (each chaos invocation is a
        fresh campaign); only interrupted batches resume.
        """
        # Deferred: repro.farm imports the experiments stack.
        from ..farm import (
            FarmEngine,
            FarmPolicy,
            ManifestMismatch,
            RunManifest,
            campaign_id_for,
        )

        cfg = self.config
        specs = [self.trial_spec(t) for t in range(cfg.trials)]
        policy = FarmPolicy(retries=cfg.retries, seed=cfg.seed)
        campaign = campaign_id_for(specs, cfg.executor)
        manifest_path = Path(cfg.artifact_dir) / "campaigns" / f"{campaign}.json"
        manifest = None
        if manifest_path.is_file():
            try:
                manifest = RunManifest.load(manifest_path)
                manifest.verify_resumable(specs)
                if manifest.complete:
                    manifest = None  # finished batch: start fresh
            except (ManifestMismatch, ValueError, OSError):
                manifest = None  # stale code or foreign file: start fresh
        if manifest is None:
            manifest = RunManifest.new(
                campaign, specs, cfg.executor, policy.as_dict(),
                path=manifest_path,
            )
        engine = FarmEngine(
            executor=cfg.executor, jobs=cfg.jobs, cache=False,
            policy=policy, point_timeout=cfg.point_timeout,
            progress=progress, manifest=manifest,
        )
        points = engine.run(specs)
        report = ChaosReport(trials=cfg.trials)
        for trial, (spec, point) in enumerate(zip(specs, points)):
            failure, detail = classify_point(point)
            if failure is None:
                continue
            report.findings.append(self._distill(trial, spec, failure, detail))
        return report

    # ---------------------------------------------------------- shrinking
    def _rerun_fails(self, spec: ExperimentSpec, family: str) -> bool:
        """The shrinker's predicate: does this spec still fail the same
        way?  Runs in-process (shrink probes are small by construction);
        a crash during a probe counts as failing only for error-family
        failures."""
        try:
            result = run_experiment(spec)
        except Exception:  # noqa: BLE001 - a crashing probe is data too
            return family == "error"
        failure, _ = classify_result(result)
        return _failure_family(failure) == family

    def _distill(
        self, trial: int, spec: ExperimentSpec, failure: str, detail: str
    ) -> ChaosFinding:
        original_events = list(spec.fault_plan or ())
        family = _failure_family(failure)
        probes = 0
        shrunk = spec
        if family != "timeout":
            # A wall-clock timeout is not reproducible by the in-process,
            # untimed probes; archive it unshrunk.
            def plan_fails(events: List[FaultEvent]) -> bool:
                return self._rerun_fails(
                    spec.replace(fault_plan=FaultPlan(list(events))), family,
                )

            events, probes = shrink_fault_plan(
                original_events, plan_fails, budget=self.config.shrink_budget,
            )
            shrunk = spec.replace(fault_plan=FaultPlan(events))
            traffic = shrunk.traffic
            remaining = self.config.shrink_budget - probes
            if (
                remaining > 0
                and isinstance(traffic, TrafficSpec)
                and traffic.config is not None
            ):
                def traffic_fails(config) -> bool:
                    return self._rerun_fails(
                        shrunk.replace(
                            traffic=TrafficSpec(traffic.name, config)
                        ),
                        family,
                    )

                config, extra = shrink_traffic_config(
                    traffic.config, traffic_fails, budget=remaining,
                )
                probes += extra
                shrunk = shrunk.replace(
                    traffic=TrafficSpec(traffic.name, config)
                )
        artifact = self._write_artifact(
            trial, shrunk, failure, detail, len(original_events), probes,
        )
        return ChaosFinding(
            trial=trial,
            failure=failure,
            detail=detail,
            artifact=str(artifact),
            original_events=len(original_events),
            shrunk_events=len(list(shrunk.fault_plan or ())),
            shrink_probes=probes,
        )

    def _write_artifact(
        self, trial: int, spec: ExperimentSpec, failure: str, detail: str,
        original_events: int, probes: int,
    ) -> Path:
        directory = Path(self.config.artifact_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"chaos-seed{self.config.seed}-trial{trial}.json"
        doc = {
            "kind": ARTIFACT_KIND,
            "version": ARTIFACT_VERSION,
            "failure": failure,
            "detail": detail,
            "spec": spec.to_dict(),
            "original_events": original_events,
            "shrunk_events": len(list(spec.fault_plan or ())),
            "shrink_probes": probes,
            "trial": trial,
            "engine_seed": self.config.seed,
        }
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

def replay_artifact(path: str) -> Tuple[bool, Optional[str], str]:
    """Re-run a chaos reproducer deterministically.

    Returns ``(reproduced, failure, detail)``: ``reproduced`` is whether
    the run failed in the same coarse class the artifact recorded.
    """
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("kind") != ARTIFACT_KIND:
        raise ValueError(
            f"{path} is not a chaos reproducer (kind={doc.get('kind')!r})"
        )
    spec = ExperimentSpec.from_dict(doc["spec"])
    if spec.observe is None or not spec.observe.validate:
        spec = spec.replace(observe=Observability(validate=True))
    try:
        result = run_experiment(spec)
        failure, detail = classify_result(result)
    except Exception:  # noqa: BLE001 - report, don't crash the CLI
        failure, detail = "error", traceback.format_exc()
    reproduced = _failure_family(failure) == _failure_family(doc["failure"])
    return reproduced, failure, detail
